//! Physical units used throughout the PES reproduction.
//!
//! All simulation time is kept in integer microseconds ([`TimeUs`]) to avoid
//! floating-point drift in the discrete-event simulator; energy and power use
//! `f64` because they are accumulated quantities that are only reported, never
//! compared for exact equality.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in time or a duration, in integer microseconds.
///
/// The simulator treats both instants and durations as `TimeUs`; the meaning
/// is clear from context (the paper's timelines all start at zero).
///
/// # Examples
///
/// ```
/// use pes_acmp::units::TimeUs;
///
/// let vsync = TimeUs::from_millis(16) + TimeUs::from_micros(667);
/// assert_eq!(vsync.as_micros(), 16_667);
/// assert!(vsync < TimeUs::from_millis(17));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimeUs(u64);

impl TimeUs {
    /// The zero instant / empty duration.
    pub const ZERO: TimeUs = TimeUs(0);

    /// Creates a time value from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        TimeUs(us)
    }

    /// Creates a time value from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        TimeUs(ms * 1_000)
    }

    /// Creates a time value from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        TimeUs(s * 1_000_000)
    }

    /// Creates a time value from fractional seconds, rounding to the nearest
    /// microsecond. Negative inputs saturate to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        TimeUs((s.max(0.0) * 1_000_000.0).round() as u64)
    }

    /// Creates a time value from fractional milliseconds, rounding to the
    /// nearest microsecond. Negative inputs saturate to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        TimeUs((ms.max(0.0) * 1_000.0).round() as u64)
    }

    /// Returns the raw number of microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the value as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the value as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Subtraction that clamps at zero instead of underflowing.
    pub fn saturating_sub(self, rhs: TimeUs) -> TimeUs {
        TimeUs(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction; `None` if `rhs > self`.
    pub fn checked_sub(self, rhs: TimeUs) -> Option<TimeUs> {
        self.0.checked_sub(rhs.0).map(TimeUs)
    }

    /// Returns the larger of `self` and `other`.
    pub fn max(self, other: TimeUs) -> TimeUs {
        TimeUs(self.0.max(other.0))
    }

    /// Returns the smaller of `self` and `other`.
    pub fn min(self, other: TimeUs) -> TimeUs {
        TimeUs(self.0.min(other.0))
    }

    /// Returns `true` when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the duration by a non-negative floating point scale factor,
    /// rounding to the nearest microsecond.
    pub fn scale(self, factor: f64) -> TimeUs {
        TimeUs((self.0 as f64 * factor.max(0.0)).round() as u64)
    }
}

impl fmt::Display for TimeUs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl Add for TimeUs {
    type Output = TimeUs;
    fn add(self, rhs: TimeUs) -> TimeUs {
        TimeUs(self.0 + rhs.0)
    }
}

impl AddAssign for TimeUs {
    fn add_assign(&mut self, rhs: TimeUs) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeUs {
    type Output = TimeUs;
    fn sub(self, rhs: TimeUs) -> TimeUs {
        TimeUs(self.0 - rhs.0)
    }
}

impl SubAssign for TimeUs {
    fn sub_assign(&mut self, rhs: TimeUs) {
        self.0 -= rhs.0;
    }
}

impl Sum for TimeUs {
    fn sum<I: Iterator<Item = TimeUs>>(iter: I) -> TimeUs {
        iter.fold(TimeUs::ZERO, |acc, t| acc + t)
    }
}

/// CPU work expressed as a cycle count (the `Ndep` term of the DVFS model).
///
/// # Examples
///
/// ```
/// use pes_acmp::units::{CpuCycles, FreqMhz};
///
/// let work = CpuCycles::new(1_800_000);
/// // 1.8M cycles at 1800 MHz take exactly 1 ms.
/// assert_eq!(work.time_at(FreqMhz::new(1800)).as_micros(), 1_000);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CpuCycles(u64);

impl CpuCycles {
    /// Zero cycles of work.
    pub const ZERO: CpuCycles = CpuCycles(0);

    /// Creates a cycle count.
    pub const fn new(cycles: u64) -> Self {
        CpuCycles(cycles)
    }

    /// Returns the raw cycle count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Time needed to retire these cycles at frequency `f`.
    pub fn time_at(self, f: FreqMhz) -> TimeUs {
        // cycles / (MHz) = microseconds, exactly.
        TimeUs::from_micros((self.0 as f64 / f.as_mhz() as f64).round() as u64)
    }

    /// Scales the cycle count by a non-negative factor (used to translate a
    /// big-core cycle count into a little-core cycle count through the CPI
    /// ratio).
    pub fn scale(self, factor: f64) -> CpuCycles {
        CpuCycles((self.0 as f64 * factor.max(0.0)).round() as u64)
    }
}

impl Add for CpuCycles {
    type Output = CpuCycles;
    fn add(self, rhs: CpuCycles) -> CpuCycles {
        CpuCycles(self.0 + rhs.0)
    }
}

impl AddAssign for CpuCycles {
    fn add_assign(&mut self, rhs: CpuCycles) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for CpuCycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

/// A CPU clock frequency in megahertz.
///
/// # Examples
///
/// ```
/// use pes_acmp::units::FreqMhz;
///
/// let f = FreqMhz::new(1800);
/// assert_eq!(f.as_khz(), 1_800_000);
/// assert!(f > FreqMhz::new(600));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FreqMhz(u32);

impl FreqMhz {
    /// Creates a frequency from a MHz value.
    pub const fn new(mhz: u32) -> Self {
        FreqMhz(mhz)
    }

    /// Returns the frequency in MHz.
    pub const fn as_mhz(self) -> u32 {
        self.0
    }

    /// Returns the frequency in kHz.
    pub const fn as_khz(self) -> u64 {
        self.0 as u64 * 1_000
    }

    /// Returns the frequency in GHz.
    pub fn as_ghz(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
}

impl fmt::Display for FreqMhz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} MHz", self.0)
    }
}

/// Electrical power in milliwatts.
///
/// # Examples
///
/// ```
/// use pes_acmp::units::{PowerMw, TimeUs};
///
/// let p = PowerMw::new(1000.0);
/// let e = p.energy_over(TimeUs::from_millis(2));
/// assert!((e.as_millijoules() - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd)]
pub struct PowerMw(f64);

impl PowerMw {
    /// Zero power.
    pub const ZERO: PowerMw = PowerMw(0.0);

    /// Creates a power value, clamping negative inputs to zero.
    pub fn new(mw: f64) -> Self {
        PowerMw(mw.max(0.0))
    }

    /// Returns the value in milliwatts.
    pub const fn as_milliwatts(self) -> f64 {
        self.0
    }

    /// Returns the value in watts.
    pub fn as_watts(self) -> f64 {
        self.0 / 1_000.0
    }

    /// Energy dissipated by this power level over `duration`.
    pub fn energy_over(self, duration: TimeUs) -> EnergyUj {
        // mW * us = nJ; divide by 1000 for microjoules.
        EnergyUj::new(self.0 * duration.as_micros() as f64 / 1_000.0)
    }
}

impl Add for PowerMw {
    type Output = PowerMw;
    fn add(self, rhs: PowerMw) -> PowerMw {
        PowerMw(self.0 + rhs.0)
    }
}

impl Mul<f64> for PowerMw {
    type Output = PowerMw;
    fn mul(self, rhs: f64) -> PowerMw {
        PowerMw::new(self.0 * rhs)
    }
}

impl fmt::Display for PowerMw {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} mW", self.0)
    }
}

/// Energy in microjoules.
///
/// # Examples
///
/// ```
/// use pes_acmp::units::EnergyUj;
///
/// let a = EnergyUj::new(1_500.0);
/// let b = EnergyUj::new(500.0);
/// assert!(((a + b).as_millijoules() - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd)]
pub struct EnergyUj(f64);

impl EnergyUj {
    /// Zero energy.
    pub const ZERO: EnergyUj = EnergyUj(0.0);

    /// Creates an energy value, clamping negative inputs to zero.
    pub fn new(uj: f64) -> Self {
        EnergyUj(uj.max(0.0))
    }

    /// Returns the value in microjoules.
    pub const fn as_microjoules(self) -> f64 {
        self.0
    }

    /// Returns the value in millijoules.
    pub fn as_millijoules(self) -> f64 {
        self.0 / 1_000.0
    }

    /// Returns the value in joules.
    pub fn as_joules(self) -> f64 {
        self.0 / 1_000_000.0
    }
}

impl Add for EnergyUj {
    type Output = EnergyUj;
    fn add(self, rhs: EnergyUj) -> EnergyUj {
        EnergyUj(self.0 + rhs.0)
    }
}

impl AddAssign for EnergyUj {
    fn add_assign(&mut self, rhs: EnergyUj) {
        self.0 += rhs.0;
    }
}

impl Sub for EnergyUj {
    type Output = EnergyUj;
    fn sub(self, rhs: EnergyUj) -> EnergyUj {
        EnergyUj((self.0 - rhs.0).max(0.0))
    }
}

impl Div for EnergyUj {
    type Output = f64;
    fn div(self, rhs: EnergyUj) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for EnergyUj {
    fn sum<I: Iterator<Item = EnergyUj>>(iter: I) -> EnergyUj {
        iter.fold(EnergyUj::ZERO, |acc, e| acc + e)
    }
}

impl fmt::Display for EnergyUj {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} mJ", self.as_millijoules())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_constructors_are_consistent() {
        assert_eq!(TimeUs::from_millis(3), TimeUs::from_micros(3_000));
        assert_eq!(TimeUs::from_secs(2), TimeUs::from_millis(2_000));
        assert_eq!(TimeUs::from_secs_f64(0.5), TimeUs::from_millis(500));
        assert_eq!(TimeUs::from_millis_f64(1.5), TimeUs::from_micros(1_500));
    }

    #[test]
    fn time_negative_float_inputs_saturate_to_zero() {
        assert_eq!(TimeUs::from_secs_f64(-1.0), TimeUs::ZERO);
        assert_eq!(TimeUs::from_millis_f64(-0.1), TimeUs::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let a = TimeUs::from_millis(10);
        let b = TimeUs::from_millis(4);
        assert_eq!((a + b).as_millis_f64(), 14.0);
        assert_eq!((a - b).as_millis_f64(), 6.0);
        assert_eq!(b.saturating_sub(a), TimeUs::ZERO);
        assert_eq!(a.checked_sub(b), Some(TimeUs::from_millis(6)));
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn time_sum_and_scale() {
        let total: TimeUs = [TimeUs::from_millis(1), TimeUs::from_millis(2)]
            .into_iter()
            .sum();
        assert_eq!(total, TimeUs::from_millis(3));
        assert_eq!(total.scale(2.0), TimeUs::from_millis(6));
        assert_eq!(total.scale(-1.0), TimeUs::ZERO);
    }

    #[test]
    fn time_display_picks_sensible_unit() {
        assert_eq!(TimeUs::from_micros(12).to_string(), "12us");
        assert_eq!(TimeUs::from_millis(12).to_string(), "12.000ms");
        assert_eq!(TimeUs::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn cycles_time_at_frequency() {
        let c = CpuCycles::new(600_000);
        assert_eq!(c.time_at(FreqMhz::new(600)).as_micros(), 1_000);
        assert_eq!(c.time_at(FreqMhz::new(1200)).as_micros(), 500);
    }

    #[test]
    fn cycles_scale_rounds() {
        let c = CpuCycles::new(100);
        assert_eq!(c.scale(1.25).get(), 125);
        assert_eq!(c.scale(0.0).get(), 0);
        assert_eq!(c.scale(-2.0).get(), 0);
    }

    #[test]
    fn power_times_time_is_energy() {
        let p = PowerMw::new(500.0);
        let e = p.energy_over(TimeUs::from_millis(10));
        assert!((e.as_millijoules() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn power_negative_clamped() {
        assert_eq!(PowerMw::new(-5.0).as_milliwatts(), 0.0);
    }

    #[test]
    fn energy_accumulates() {
        let mut e = EnergyUj::ZERO;
        e += EnergyUj::new(250.0);
        e += EnergyUj::new(750.0);
        assert!((e.as_millijoules() - 1.0).abs() < 1e-9);
        assert!((e.as_joules() - 0.001).abs() < 1e-12);
    }

    #[test]
    fn energy_ratio_and_subtraction() {
        let a = EnergyUj::new(100.0);
        let b = EnergyUj::new(50.0);
        assert!((a / b - 2.0).abs() < 1e-12);
        assert_eq!((b - a).as_microjoules(), 0.0);
    }

    #[test]
    fn frequency_conversions() {
        let f = FreqMhz::new(1500);
        assert_eq!(f.as_khz(), 1_500_000);
        assert!((f.as_ghz() - 1.5).abs() < 1e-12);
        assert_eq!(f.to_string(), "1500 MHz");
    }
}
