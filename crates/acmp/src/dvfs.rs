//! The analytical DVFS latency model of Eqn. 1: `T = Tmem + Ndep / f`.
//!
//! Events carry a [`CpuDemand`] (memory-bound time plus a CPU-cycle
//! requirement); [`DvfsModel`] maps a demand and an [`AcmpConfig`] to an
//! execution latency and to the energy spent, and — like EBS and PES — can
//! *recover* the demand from two latency observations at different
//! frequencies by solving the two-equation system described in Sec. 5.3.


use crate::config::AcmpConfig;
use crate::error::AcmpError;
use crate::platform::Platform;
use crate::units::{CpuCycles, EnergyUj, FreqMhz, PowerMw, TimeUs};

/// The compute demand of one event execution, expressed in
/// microarchitecture-independent terms.
///
/// `ref_cycles` is the number of CPU cycles the event needs on the in-order
/// Cortex-A7 reference core (IPC = 1.0 in this model); the cycle count on any
/// other core kind is obtained by dividing by that core's relative IPC.
/// `t_mem` is the frequency-independent memory-access time of Eqn. 1.
///
/// # Examples
///
/// ```
/// use pes_acmp::dvfs::CpuDemand;
/// use pes_acmp::units::{CpuCycles, TimeUs};
///
/// let d = CpuDemand::new(TimeUs::from_millis(5), CpuCycles::new(100_000_000));
/// assert_eq!(d.t_mem(), TimeUs::from_millis(5));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CpuDemand {
    t_mem: TimeUs,
    ref_cycles: CpuCycles,
}

impl CpuDemand {
    /// Creates a demand from a memory time and an A7-equivalent cycle count.
    pub const fn new(t_mem: TimeUs, ref_cycles: CpuCycles) -> Self {
        CpuDemand { t_mem, ref_cycles }
    }

    /// A demand with no work at all (used for padding/idle pseudo-events).
    pub const ZERO: CpuDemand = CpuDemand {
        t_mem: TimeUs::ZERO,
        ref_cycles: CpuCycles::ZERO,
    };

    /// The frequency-independent memory component (`Tmem`).
    pub const fn t_mem(&self) -> TimeUs {
        self.t_mem
    }

    /// The A7-equivalent CPU cycle requirement (`Ndep` on the reference core).
    pub const fn ref_cycles(&self) -> CpuCycles {
        self.ref_cycles
    }

    /// Adds two demands (e.g. callback plus rendering stages).
    pub fn combine(&self, other: &CpuDemand) -> CpuDemand {
        CpuDemand {
            t_mem: self.t_mem + other.t_mem,
            ref_cycles: self.ref_cycles + other.ref_cycles,
        }
    }

    /// Scales both components by a non-negative factor.
    pub fn scale(&self, factor: f64) -> CpuDemand {
        CpuDemand {
            t_mem: self.t_mem.scale(factor),
            ref_cycles: self.ref_cycles.scale(factor),
        }
    }
}

/// The DVFS latency/energy model bound to a concrete [`Platform`].
///
/// # Examples
///
/// ```
/// use pes_acmp::{Platform, dvfs::{CpuDemand, DvfsModel}};
/// use pes_acmp::units::{CpuCycles, TimeUs};
///
/// let platform = Platform::exynos_5410();
/// let model = DvfsModel::new(&platform);
/// let demand = CpuDemand::new(TimeUs::from_millis(10), CpuCycles::new(200_000_000));
/// let fast = model.execution_time(&demand, &platform.max_performance_config());
/// let slow = model.execution_time(&demand, &platform.min_power_config());
/// assert!(fast < slow);
/// ```
#[derive(Debug, Clone)]
pub struct DvfsModel<'p> {
    platform: &'p Platform,
}

impl<'p> DvfsModel<'p> {
    /// Binds the model to a platform.
    pub fn new(platform: &'p Platform) -> Self {
        DvfsModel { platform }
    }

    /// The platform this model is bound to.
    pub fn platform(&self) -> &Platform {
        self.platform
    }

    /// Execution latency of `demand` on configuration `cfg` (Eqn. 1/3):
    /// `T = Tmem + Ndep(core) / f`.
    pub fn execution_time(&self, demand: &CpuDemand, cfg: &AcmpConfig) -> TimeUs {
        let cycles_on_core = demand
            .ref_cycles()
            .scale(1.0 / cfg.core().ipc_relative_to_a7());
        demand.t_mem() + cycles_on_core.time_at(cfg.frequency())
    }

    /// Active power drawn while executing on `cfg`, including the idle power
    /// of the other cluster (cores stay on, Sec. 4.1).
    pub fn execution_power(&self, cfg: &AcmpConfig) -> PowerMw {
        self.platform.active_power(cfg) + self.platform.background_idle_power(cfg)
    }

    /// Energy spent executing `demand` on `cfg`.
    pub fn execution_energy(&self, demand: &CpuDemand, cfg: &AcmpConfig) -> EnergyUj {
        self.execution_power(cfg)
            .energy_over(self.execution_time(demand, cfg))
    }

    /// Idle power while the runtime waits at configuration `cfg` (own core
    /// idling plus the other cluster's idle floor).
    pub fn idle_power(&self, cfg: &AcmpConfig) -> PowerMw {
        self.platform.idle_power(cfg) + self.platform.background_idle_power(cfg)
    }

    /// The lowest possible idle power of the whole processor subsystem: every
    /// cluster parked at its minimum operating point plus the SoC floor. This
    /// is the power that is drawn during a user session *regardless* of
    /// scheduling decisions.
    pub fn baseline_idle_power(&self) -> PowerMw {
        let min_cfg = self.platform.min_power_config();
        self.idle_power(&min_cfg)
    }

    /// The *marginal* energy of executing `demand` on `cfg`: the energy above
    /// what the processor would have drawn idling for the same wall-clock
    /// time. Because the user session length is set by the user (not by how
    /// fast events execute), minimising marginal energy is the correct
    /// scheduling objective — the always-on floor is paid either way. This is
    /// the cost used in the EBS/PES/Oracle optimisation (Eqn. 5); measured
    /// session energy still includes the floor.
    pub fn marginal_energy(&self, demand: &CpuDemand, cfg: &AcmpConfig) -> EnergyUj {
        let time = self.execution_time(demand, cfg);
        let gross = self.execution_power(cfg).energy_over(time);
        let baseline = self.baseline_idle_power().energy_over(time);
        gross - baseline
    }

    /// Recovers a [`CpuDemand`] from two latency observations of the *same*
    /// event workload taken at two different frequencies on the same core
    /// kind, by solving the linear system of Eqn. 1 — the online profiling
    /// step both EBS and PES perform the first two times an event is seen
    /// (Sec. 5.3).
    ///
    /// # Errors
    ///
    /// Returns [`AcmpError::DemandRecovery`] when the two observations use
    /// the same frequency or different core kinds, or when the observations
    /// are inconsistent (they would imply negative `Tmem` or `Ndep`, in which
    /// case the closest physically meaningful demand is unrecoverable).
    pub fn recover_demand(
        &self,
        obs_a: (AcmpConfig, TimeUs),
        obs_b: (AcmpConfig, TimeUs),
    ) -> Result<CpuDemand, AcmpError> {
        let (cfg_a, t_a) = obs_a;
        let (cfg_b, t_b) = obs_b;
        if cfg_a.core() != cfg_b.core() {
            return Err(AcmpError::DemandRecovery(
                "observations must come from the same core kind".into(),
            ));
        }
        if cfg_a.frequency() == cfg_b.frequency() {
            return Err(AcmpError::DemandRecovery(
                "observations must use two distinct frequencies".into(),
            ));
        }
        // T = Tmem + C/f  =>  C = (Ta - Tb) / (1/fa - 1/fb),  Tmem = Ta - C/fa
        let fa = cfg_a.frequency().as_mhz() as f64;
        let fb = cfg_b.frequency().as_mhz() as f64;
        let ta = t_a.as_micros() as f64;
        let tb = t_b.as_micros() as f64;
        let inv_diff = 1.0 / fa - 1.0 / fb;
        let cycles_on_core = (ta - tb) / inv_diff;
        if !cycles_on_core.is_finite() || cycles_on_core < 0.0 {
            return Err(AcmpError::DemandRecovery(
                "observations imply a negative cycle count".into(),
            ));
        }
        let t_mem = ta - cycles_on_core / fa;
        if t_mem < -1.0 {
            return Err(AcmpError::DemandRecovery(
                "observations imply a negative memory time".into(),
            ));
        }
        let ref_cycles = cycles_on_core * cfg_a.core().ipc_relative_to_a7();
        Ok(CpuDemand::new(
            TimeUs::from_micros(t_mem.max(0.0).round() as u64),
            CpuCycles::new(ref_cycles.round() as u64),
        ))
    }

    /// The cheapest (lowest marginal-energy) configuration that finishes
    /// `demand` within `budget`, or `None` if even the fastest configuration
    /// misses the budget (the Type I situation of Sec. 4.3).
    pub fn cheapest_config_within(
        &self,
        demand: &CpuDemand,
        budget: TimeUs,
    ) -> Option<AcmpConfig> {
        // One energy evaluation per candidate (a `min_by` on the lazily
        // recomputed energy costs two per comparison; this sits on every
        // reactive scheduling decision). Strictly-less keeps `min_by`'s
        // first-minimum tie-breaking.
        let mut best: Option<(AcmpConfig, f64)> = None;
        for cfg in self.platform.configs() {
            if self.execution_time(demand, cfg) > budget {
                continue;
            }
            let energy = self.marginal_energy(demand, cfg).as_microjoules();
            assert!(energy.is_finite(), "energy is finite");
            match best {
                Some((_, cheapest)) if energy >= cheapest => {}
                _ => best = Some((*cfg, energy)),
            }
        }
        best.map(|(cfg, _)| cfg)
    }

    /// Latency of `demand` under the fastest configuration of the platform.
    pub fn best_case_latency(&self, demand: &CpuDemand) -> TimeUs {
        self.platform
            .configs()
            .iter()
            .map(|cfg| self.execution_time(demand, cfg))
            .min()
            .unwrap_or(TimeUs::ZERO)
    }

    /// Frequency of the config expressed for reporting, e.g. in Fig. 2 style
    /// timelines.
    pub fn describe(&self, cfg: &AcmpConfig) -> String {
        format!(
            "{} ({} active)",
            cfg,
            self.execution_power(cfg)
        )
    }
}

/// Convenience alias for a `(config, frequency)` observation pair used by
/// demand recovery.
pub type LatencyObservation = (AcmpConfig, TimeUs);

/// Returns the frequency of an observation; small helper used by schedulers'
/// profiling tables.
pub fn observation_frequency(obs: &LatencyObservation) -> FreqMhz {
    obs.0.frequency()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreKind;

    fn model_fixture() -> (Platform, CpuDemand) {
        let platform = Platform::exynos_5410();
        let demand = CpuDemand::new(TimeUs::from_millis(20), CpuCycles::new(300_000_000));
        (platform, demand)
    }

    #[test]
    fn latency_decreases_with_throughput() {
        let (platform, demand) = model_fixture();
        let model = DvfsModel::new(&platform);
        let latencies: Vec<u64> = platform
            .configs()
            .iter()
            .map(|cfg| model.execution_time(&demand, cfg).as_micros())
            .collect();
        // Configurations are sorted by effective throughput, so latency must
        // be non-increasing along the table.
        assert!(latencies.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn memory_time_is_frequency_independent() {
        let platform = Platform::exynos_5410();
        let model = DvfsModel::new(&platform);
        let pure_mem = CpuDemand::new(TimeUs::from_millis(7), CpuCycles::ZERO);
        for cfg in platform.configs() {
            assert_eq!(model.execution_time(&pure_mem, cfg), TimeUs::from_millis(7));
        }
    }

    #[test]
    fn energy_tradeoff_little_is_cheaper_but_slower() {
        let (platform, demand) = model_fixture();
        let model = DvfsModel::new(&platform);
        let big = platform.max_performance_config();
        let little = AcmpConfig::new(CoreKind::LittleA7, FreqMhz::new(600));
        assert!(model.execution_time(&demand, &big) < model.execution_time(&demand, &little));
        assert!(
            model.marginal_energy(&demand, &big).as_microjoules()
                > model.marginal_energy(&demand, &little).as_microjoules(),
            "big core should cost more marginal energy for the same work"
        );
        // The baseline idle floor is charged during execution regardless of
        // the configuration, so marginal energy is strictly below gross.
        assert!(
            model.marginal_energy(&demand, &big).as_microjoules()
                < model.execution_energy(&demand, &big).as_microjoules()
        );
    }

    #[test]
    fn demand_recovery_round_trips() {
        let (platform, demand) = model_fixture();
        let model = DvfsModel::new(&platform);
        let cfg_a = AcmpConfig::new(CoreKind::BigA15, FreqMhz::new(1000));
        let cfg_b = AcmpConfig::new(CoreKind::BigA15, FreqMhz::new(1600));
        let t_a = model.execution_time(&demand, &cfg_a);
        let t_b = model.execution_time(&demand, &cfg_b);
        let recovered = model.recover_demand((cfg_a, t_a), (cfg_b, t_b)).unwrap();
        let rel_err = |a: u64, b: u64| (a as f64 - b as f64).abs() / (b as f64).max(1.0);
        assert!(rel_err(recovered.t_mem().as_micros(), demand.t_mem().as_micros()) < 0.02);
        assert!(rel_err(recovered.ref_cycles().get(), demand.ref_cycles().get()) < 0.02);
    }

    #[test]
    fn demand_recovery_rejects_degenerate_observations() {
        let (platform, demand) = model_fixture();
        let model = DvfsModel::new(&platform);
        let cfg = AcmpConfig::new(CoreKind::BigA15, FreqMhz::new(1000));
        let t = model.execution_time(&demand, &cfg);
        assert!(model.recover_demand((cfg, t), (cfg, t)).is_err());
        let little = AcmpConfig::new(CoreKind::LittleA7, FreqMhz::new(600));
        assert!(model
            .recover_demand((cfg, t), (little, model.execution_time(&demand, &little)))
            .is_err());
        // Inconsistent observations: lower frequency reported *faster* time.
        let cfg_hi = AcmpConfig::new(CoreKind::BigA15, FreqMhz::new(1800));
        assert!(model
            .recover_demand((cfg, TimeUs::from_millis(5)), (cfg_hi, TimeUs::from_millis(50)))
            .is_err());
    }

    #[test]
    fn cheapest_config_within_budget_prefers_low_energy() {
        let (platform, demand) = model_fixture();
        let model = DvfsModel::new(&platform);
        // A generous budget should pick something on the little cluster.
        let generous = model
            .cheapest_config_within(&demand, TimeUs::from_secs(10))
            .unwrap();
        assert_eq!(generous.core(), CoreKind::LittleA7);
        // A tight-but-feasible budget forces the big cluster.
        let tight_budget = model.execution_time(&demand, &platform.max_performance_config())
            + TimeUs::from_millis(1);
        let tight = model.cheapest_config_within(&demand, tight_budget).unwrap();
        assert_eq!(tight.core(), CoreKind::BigA15);
        // An impossible budget yields no configuration (Type I event).
        assert!(model
            .cheapest_config_within(&demand, TimeUs::from_micros(10))
            .is_none());
    }

    #[test]
    fn demand_combine_and_scale() {
        let a = CpuDemand::new(TimeUs::from_millis(2), CpuCycles::new(1_000));
        let b = CpuDemand::new(TimeUs::from_millis(3), CpuCycles::new(2_000));
        let c = a.combine(&b);
        assert_eq!(c.t_mem(), TimeUs::from_millis(5));
        assert_eq!(c.ref_cycles().get(), 3_000);
        let half = c.scale(0.5);
        assert_eq!(half.t_mem(), TimeUs::from_millis_f64(2.5));
        assert_eq!(half.ref_cycles().get(), 1_500);
    }

    #[test]
    fn execution_power_includes_background_cluster() {
        let (platform, _) = model_fixture();
        let model = DvfsModel::new(&platform);
        let cfg = platform.max_performance_config();
        assert!(
            model.execution_power(&cfg).as_milliwatts()
                > platform.active_power(&cfg).as_milliwatts()
        );
    }

    #[test]
    fn best_case_latency_equals_fastest_config() {
        let (platform, demand) = model_fixture();
        let model = DvfsModel::new(&platform);
        assert_eq!(
            model.best_case_latency(&demand),
            model.execution_time(&demand, &platform.max_performance_config())
        );
    }
}
