//! The analytical DVFS latency model of Eqn. 1: `T = Tmem + Ndep / f`.
//!
//! Events carry a [`CpuDemand`] (memory-bound time plus a CPU-cycle
//! requirement); [`DvfsModel`] maps a demand and an [`AcmpConfig`] to an
//! execution latency and to the energy spent, and — like EBS and PES — can
//! *recover* the demand from two latency observations at different
//! frequencies by solving the two-equation system described in Sec. 5.3.

use std::sync::Arc;

use crate::config::AcmpConfig;
use crate::error::AcmpError;
use crate::platform::Platform;
use crate::units::{CpuCycles, EnergyUj, FreqMhz, PowerMw, TimeUs};

/// The compute demand of one event execution, expressed in
/// microarchitecture-independent terms.
///
/// `ref_cycles` is the number of CPU cycles the event needs on the in-order
/// Cortex-A7 reference core (IPC = 1.0 in this model); the cycle count on any
/// other core kind is obtained by dividing by that core's relative IPC.
/// `t_mem` is the frequency-independent memory-access time of Eqn. 1.
///
/// # Examples
///
/// ```
/// use pes_acmp::dvfs::CpuDemand;
/// use pes_acmp::units::{CpuCycles, TimeUs};
///
/// let d = CpuDemand::new(TimeUs::from_millis(5), CpuCycles::new(100_000_000));
/// assert_eq!(d.t_mem(), TimeUs::from_millis(5));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CpuDemand {
    t_mem: TimeUs,
    ref_cycles: CpuCycles,
}

impl CpuDemand {
    /// Creates a demand from a memory time and an A7-equivalent cycle count.
    pub const fn new(t_mem: TimeUs, ref_cycles: CpuCycles) -> Self {
        CpuDemand { t_mem, ref_cycles }
    }

    /// A demand with no work at all (used for padding/idle pseudo-events).
    pub const ZERO: CpuDemand = CpuDemand {
        t_mem: TimeUs::ZERO,
        ref_cycles: CpuCycles::ZERO,
    };

    /// The frequency-independent memory component (`Tmem`).
    pub const fn t_mem(&self) -> TimeUs {
        self.t_mem
    }

    /// The A7-equivalent CPU cycle requirement (`Ndep` on the reference core).
    pub const fn ref_cycles(&self) -> CpuCycles {
        self.ref_cycles
    }

    /// Adds two demands (e.g. callback plus rendering stages).
    pub fn combine(&self, other: &CpuDemand) -> CpuDemand {
        CpuDemand {
            t_mem: self.t_mem + other.t_mem,
            ref_cycles: self.ref_cycles + other.ref_cycles,
        }
    }

    /// Scales both components by a non-negative factor.
    pub fn scale(&self, factor: f64) -> CpuDemand {
        CpuDemand {
            t_mem: self.t_mem.scale(factor),
            ref_cycles: self.ref_cycles.scale(factor),
        }
    }
}

/// One rung of the precomputed [`DvfsLadder`]: a platform configuration with
/// every demand-independent term of the Eqn. 1/5 math frozen at build time.
///
/// Besides the combined `exec_power` the optimisation objective uses, each
/// rung freezes the three *raw* power terms ([`LadderRung::active_power`],
/// [`LadderRung::idle_power`], [`LadderRung::background_power`]) that the
/// [`crate::EnergyMeter`] previously re-derived from the cluster tables on
/// every `record_busy`/`record_idle` call — the per-call math the shared
/// power plane removes from the metering hot path. Each is computed with the
/// exact expression the platform tables use, so plane-routed samples are
/// bit-identical to the direct derivation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderRung {
    /// The configuration this rung describes, in platform config-table order.
    pub config: AcmpConfig,
    /// `1 / ipc_relative_to_a7`, the factor translating reference cycles
    /// into cycles on this rung's core. Precomputed with the exact
    /// expression the direct model uses, so scaled cycle counts are
    /// bit-identical.
    pub inv_ipc: f64,
    /// Active power including the background cluster's idle floor — the
    /// value [`DvfsModel::execution_power`] recomputes from the platform on
    /// every call.
    pub exec_power: PowerMw,
    /// Active power of the executing core alone
    /// ([`Platform::active_power`] frozen).
    pub active_power: PowerMw,
    /// Idle power of the core parked at this configuration
    /// ([`Platform::idle_power`] frozen).
    pub idle_power: PowerMw,
    /// Idle floor of the rest of the SoC while this configuration runs
    /// ([`Platform::background_idle_power`] frozen).
    pub background_power: PowerMw,
}

/// The per-configuration latency/energy of one concrete demand: one row of
/// the decision table every reactive scheduling decision and every
/// optimisation-window fill iterates over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderPoint {
    /// The configuration, in platform config-table order.
    pub config: AcmpConfig,
    /// Execution latency of the demand on that configuration (Eqn. 1).
    pub time: TimeUs,
    /// Marginal energy in microjoules (Eqn. 5 cost).
    pub energy_uj: f64,
}

/// The precomputed per-configuration energy/latency ladder.
///
/// The direct [`DvfsModel`] methods walk the platform's cluster tables on
/// every call — `marginal_energy` even re-derives the baseline idle power
/// (an O(configs) scan with per-config power evaluations) each time, which
/// put the 17-configuration loop of every reactive decision and every
/// ILP-window fill at the top of the replay profiles. The ladder freezes all
/// demand-independent terms once per platform; evaluating a demand across
/// all configurations is then 17 fused multiply-adds. Every value is
/// computed with the exact expressions of the direct model, so decisions are
/// byte-identical (pinned by the exhaustive ladder test and the golden-trace
/// tests).
#[derive(Debug, Clone)]
pub struct DvfsLadder {
    rungs: Vec<LadderRung>,
    baseline: PowerMw,
}

impl DvfsLadder {
    /// Builds the ladder for a platform. This is the shared power plane of a
    /// replay fleet: built once per `(platform, context)` and handed out as
    /// an `Arc` to every execution engine, scheduler and energy meter, so no
    /// replay ever rebuilds the 17-rung table (the per-replay
    /// `DvfsModel::new` rebuild was measurable on the Interactive governor
    /// unit).
    pub fn for_platform(platform: &Platform) -> Self {
        let min_cfg = platform.min_power_config();
        let baseline = platform.idle_power(&min_cfg) + platform.background_idle_power(&min_cfg);
        let rungs = platform
            .configs()
            .iter()
            .map(|cfg| LadderRung {
                config: *cfg,
                inv_ipc: 1.0 / cfg.core().ipc_relative_to_a7(),
                exec_power: platform.active_power(cfg) + platform.background_idle_power(cfg),
                active_power: platform.active_power(cfg),
                idle_power: platform.idle_power(cfg),
                background_power: platform.background_idle_power(cfg),
            })
            .collect();
        DvfsLadder { rungs, baseline }
    }

    /// Asserts this ladder was built for `platform`'s configuration table —
    /// the construction-time guard every shared-plane consumer runs, so a
    /// plane/platform mix-up fails loudly instead of silently metering with
    /// the wrong frozen powers. One pass over a tiny table, paid once per
    /// engine/meter, never per sample.
    pub fn assert_matches(&self, platform: &Platform) {
        assert!(
            self.rungs.len() == platform.configs().len()
                && self
                    .rungs
                    .iter()
                    .zip(platform.configs())
                    .all(|(rung, cfg)| rung.config == *cfg),
            "shared DVFS plane was built for a different platform than {}",
            platform.name()
        );
    }

    /// The rung index holding `cfg`, when `cfg` is a platform operating
    /// point. A linear scan of a tiny table (17 entries on the Exynos
    /// 5410), each compare two small scalars — far cheaper than re-deriving
    /// cluster powers.
    pub fn rung_index(&self, cfg: &AcmpConfig) -> Option<usize> {
        self.rungs.iter().position(|r| r.config == *cfg)
    }

    /// Number of configurations (rungs).
    pub fn len(&self) -> usize {
        self.rungs.len()
    }

    /// Whether the ladder has no rungs (never true for a valid platform).
    pub fn is_empty(&self) -> bool {
        self.rungs.is_empty()
    }

    /// The precomputed rungs, in platform config-table order.
    pub fn rungs(&self) -> &[LadderRung] {
        &self.rungs
    }

    /// The precomputed baseline idle power (the always-on floor charged
    /// against gross energy in the marginal-energy objective).
    pub fn baseline_idle_power(&self) -> PowerMw {
        self.baseline
    }

    /// Latency of `demand` on rung `index` — identical to
    /// [`DvfsModel::execution_time`] on that rung's configuration.
    pub fn execution_time_at(&self, demand: &CpuDemand, index: usize) -> TimeUs {
        let rung = &self.rungs[index];
        demand.t_mem()
            + demand
                .ref_cycles()
                .scale(rung.inv_ipc)
                .time_at(rung.config.frequency())
    }

    /// Marginal energy of `demand` on rung `index` — identical to
    /// [`DvfsModel::marginal_energy`] on that rung's configuration.
    pub fn marginal_energy_at(&self, demand: &CpuDemand, index: usize) -> EnergyUj {
        let time = self.execution_time_at(demand, index);
        self.marginal_energy_over(index, time)
    }

    /// Marginal energy of occupying rung `index` for `time`.
    fn marginal_energy_over(&self, index: usize, time: TimeUs) -> EnergyUj {
        let gross = self.rungs[index].exec_power.energy_over(time);
        let baseline = self.baseline.energy_over(time);
        gross - baseline
    }

    /// Evaluates `demand` across every rung into `out` (cleared first,
    /// allocation reused): the demand-bucketed memo rows a [`LadderCache`]
    /// serves.
    pub fn eval_into(&self, demand: &CpuDemand, out: &mut Vec<LadderPoint>) {
        out.clear();
        out.extend((0..self.rungs.len()).map(|i| {
            let time = self.execution_time_at(demand, i);
            LadderPoint {
                config: self.rungs[i].config,
                time,
                energy_uj: self.marginal_energy_over(i, time).as_microjoules(),
            }
        }));
    }

    /// The cheapest (lowest marginal-energy) point finishing within
    /// `budget`, or `None` when even the fastest misses it. Selection is
    /// identical to [`DvfsModel::cheapest_config_within`] (both delegate to
    /// the same selector): strictly-less comparison keeps the first minimum
    /// on ties.
    pub fn cheapest_within(points: &[LadderPoint], budget: TimeUs) -> Option<AcmpConfig> {
        select_cheapest(
            points.iter().map(|p| (p.time, p.energy_uj, p.config)),
            budget,
        )
    }
}

/// The one authoritative budget selector: the cheapest configuration among
/// `(latency, marginal energy µJ, config)` candidates whose latency fits
/// `budget`. Strictly-less comparison keeps the first minimum on ties — the
/// tie-breaking the pre-ladder `min_by` selection had, which scheduler
/// decisions depend on.
fn select_cheapest(
    candidates: impl Iterator<Item = (TimeUs, f64, AcmpConfig)>,
    budget: TimeUs,
) -> Option<AcmpConfig> {
    let mut best: Option<(AcmpConfig, f64)> = None;
    for (time, energy, config) in candidates {
        if time > budget {
            continue;
        }
        assert!(energy.is_finite(), "energy is finite");
        match best {
            Some((_, cheapest)) if energy >= cheapest => {}
            _ => best = Some((config, energy)),
        }
    }
    best.map(|(cfg, _)| cfg)
}

/// Number of demands a [`LadderCache`] retains.
const LADDER_CACHE_SIZE: usize = 32;

/// One memoised ladder row: the per-configuration [`LadderPoint`]s of a
/// demand plus, computed lazily on first request, the two sorted index
/// orders the optimisation-window poser carries into the solver.
///
/// The orders are **stable** sorts of the point indices — by marginal energy
/// (the solver's option cost) and by latency in whole microseconds (the
/// solver's option duration) — with exactly the tie-breaking
/// `ScheduleProblem`'s own table build uses, so a window re-posed from these
/// orders is bit-identical to one that re-sorted the options itself.
#[derive(Debug, Clone, Default)]
pub struct LadderRow {
    points: Vec<LadderPoint>,
    by_cost: Vec<u32>,
    by_duration: Vec<u32>,
}

impl LadderRow {
    /// The per-configuration points, in platform config-table order.
    pub fn points(&self) -> &[LadderPoint] {
        &self.points
    }

    /// Point indices sorted ascending by marginal energy (stable: ties keep
    /// config-table order). Only present after [`LadderCache::row`] served
    /// this row at least once.
    pub fn by_cost(&self) -> &[u32] {
        &self.by_cost
    }

    /// Point indices sorted ascending by whole-microsecond latency (stable:
    /// ties keep config-table order). Only present after
    /// [`LadderCache::row`] served this row at least once.
    pub fn by_duration(&self) -> &[u32] {
        &self.by_duration
    }

    /// Re-evaluates the row for a new demand, invalidating the sorted
    /// orders (they are rebuilt lazily by [`LadderRow::ensure_sorted`]).
    fn refill(&mut self, ladder: &DvfsLadder, demand: &CpuDemand) {
        ladder.eval_into(demand, &mut self.points);
        self.by_cost.clear();
        self.by_duration.clear();
    }

    /// Builds the sorted orders if this row does not hold them yet. Pure
    /// `points()` consumers (reactive decisions) never pay for the sorts.
    // The comparator `expect` restates a ladder invariant: `eval_into` only
    // produces finite energies (finite power × finite time), so the partial
    // ordering is total here.
    #[allow(clippy::expect_used)]
    fn ensure_sorted(&mut self) {
        if self.by_cost.len() == self.points.len() {
            return;
        }
        self.by_cost.clear();
        self.by_cost.extend(0..self.points.len() as u32);
        let points = &self.points;
        self.by_cost.sort_by(|&a, &b| {
            points[a as usize]
                .energy_uj
                .partial_cmp(&points[b as usize].energy_uj)
                .expect("ladder energies are finite")
        });
        self.by_duration.clear();
        self.by_duration.extend(0..self.points.len() as u32);
        self.by_duration
            .sort_by_key(|&a| points[a as usize].time.as_micros());
    }
}

/// A small demand-keyed memo of ladder evaluations.
///
/// Reactive decisions and window fills evaluate the same few demands over
/// and over — profiled per-event-type estimates only move when an
/// observation lands, and the PES planner quantises its estimates onto a
/// coarse grid precisely so the same rows recur across prediction rounds.
/// The cache is a ring of demand-keyed [`LadderRow`]s with linear lookup:
/// hits cost a handful of 16-byte key compares, misses re-evaluate into the
/// evicted row's allocations.
///
/// Callers own their cache (one per scheduler / replay scratch); rows are
/// only meaningful against the ladder they were filled from.
#[derive(Debug, Clone, Default)]
pub struct LadderCache {
    entries: Vec<(CpuDemand, LadderRow)>,
    cursor: usize,
    hits: usize,
    misses: usize,
}

impl LadderCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        LadderCache::default()
    }

    /// `(hits, misses)` so far; used by tests to prove the memo engages.
    pub fn stats(&self) -> (usize, usize) {
        (self.hits, self.misses)
    }

    /// Drops every cached row (e.g. on scheduler reset).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.cursor = 0;
    }

    /// The ring slot holding `demand`, filling (or recycling) one on a miss.
    fn slot(&mut self, ladder: &DvfsLadder, demand: &CpuDemand) -> usize {
        if let Some(slot) = self.entries.iter().position(|(key, _)| key == demand) {
            self.hits += 1;
            return slot;
        }
        self.misses += 1;
        let slot = if self.entries.len() < LADDER_CACHE_SIZE {
            self.entries.push((*demand, LadderRow::default()));
            self.entries.len() - 1
        } else {
            let slot = self.cursor;
            self.cursor = (self.cursor + 1) % LADDER_CACHE_SIZE;
            self.entries[slot].0 = *demand;
            slot
        };
        self.entries[slot].1.refill(ladder, demand);
        slot
    }

    /// The per-configuration points of `demand`, from cache when the demand
    /// was evaluated recently.
    pub fn points(&mut self, ladder: &DvfsLadder, demand: &CpuDemand) -> &[LadderPoint] {
        let slot = self.slot(ladder, demand);
        self.entries[slot].1.points()
    }

    /// The full row of `demand` — points plus the cost- and duration-sorted
    /// index orders (computed on first request and memoised with the row).
    /// This is what the PES window poser consumes so a re-posed
    /// `ScheduleProblem` never re-sorts its option tables.
    pub fn row(&mut self, ladder: &DvfsLadder, demand: &CpuDemand) -> &LadderRow {
        let slot = self.slot(ladder, demand);
        self.entries[slot].1.ensure_sorted();
        &self.entries[slot].1
    }
}

/// The DVFS latency/energy model bound to a concrete [`Platform`].
///
/// # Examples
///
/// ```
/// use pes_acmp::{Platform, dvfs::{CpuDemand, DvfsModel}};
/// use pes_acmp::units::{CpuCycles, TimeUs};
///
/// let platform = Platform::exynos_5410();
/// let model = DvfsModel::new(&platform);
/// let demand = CpuDemand::new(TimeUs::from_millis(10), CpuCycles::new(200_000_000));
/// let fast = model.execution_time(&demand, &platform.max_performance_config());
/// let slow = model.execution_time(&demand, &platform.min_power_config());
/// assert!(fast < slow);
/// ```
#[derive(Debug, Clone)]
pub struct DvfsModel<'p> {
    platform: &'p Platform,
    ladder: Arc<DvfsLadder>,
}

impl<'p> DvfsModel<'p> {
    /// Binds the model to a platform, precomputing the per-configuration
    /// ladder.
    pub fn new(platform: &'p Platform) -> Self {
        DvfsModel {
            platform,
            ladder: Arc::new(DvfsLadder::for_platform(platform)),
        }
    }

    /// Binds the model to a platform using an already-built shared ladder
    /// (the context-wide power plane), skipping the per-model ladder build.
    ///
    /// # Panics
    ///
    /// Panics if the ladder was built for a different platform.
    pub fn with_ladder(platform: &'p Platform, ladder: Arc<DvfsLadder>) -> Self {
        ladder.assert_matches(platform);
        DvfsModel { platform, ladder }
    }

    /// The platform this model is bound to.
    pub fn platform(&self) -> &Platform {
        self.platform
    }

    /// The precomputed per-configuration ladder.
    pub fn ladder(&self) -> &DvfsLadder {
        &self.ladder
    }

    /// The shared handle to the ladder, for callers that hand the same power
    /// plane to other components (e.g. the energy meter).
    pub fn shared_ladder(&self) -> &Arc<DvfsLadder> {
        &self.ladder
    }

    /// The ladder rung holding `cfg`, when `cfg` is a platform operating
    /// point.
    fn rung_for(&self, cfg: &AcmpConfig) -> Option<&LadderRung> {
        self.ladder.rung_index(cfg).map(|i| &self.ladder.rungs[i])
    }

    /// Execution latency of `demand` on configuration `cfg` (Eqn. 1/3):
    /// `T = Tmem + Ndep(core) / f`.
    pub fn execution_time(&self, demand: &CpuDemand, cfg: &AcmpConfig) -> TimeUs {
        let cycles_on_core = demand
            .ref_cycles()
            .scale(1.0 / cfg.core().ipc_relative_to_a7());
        demand.t_mem() + cycles_on_core.time_at(cfg.frequency())
    }

    /// Active power drawn while executing on `cfg`, including the idle power
    /// of the other cluster (cores stay on, Sec. 4.1). Served from the
    /// precomputed ladder for platform operating points; derived directly
    /// (identically) for off-ladder configurations.
    pub fn execution_power(&self, cfg: &AcmpConfig) -> PowerMw {
        match self.rung_for(cfg) {
            Some(rung) => rung.exec_power,
            None => self.execution_power_reference(cfg),
        }
    }

    /// [`DvfsModel::execution_power`] computed from the platform tables on
    /// every call — the pre-ladder implementation, retained as the reference
    /// the differential tests compare the precomputed path against.
    pub fn execution_power_reference(&self, cfg: &AcmpConfig) -> PowerMw {
        self.platform.active_power(cfg) + self.platform.background_idle_power(cfg)
    }

    /// Energy spent executing `demand` on `cfg`.
    pub fn execution_energy(&self, demand: &CpuDemand, cfg: &AcmpConfig) -> EnergyUj {
        self.execution_power(cfg)
            .energy_over(self.execution_time(demand, cfg))
    }

    /// Idle power while the runtime waits at configuration `cfg` (own core
    /// idling plus the other cluster's idle floor).
    pub fn idle_power(&self, cfg: &AcmpConfig) -> PowerMw {
        self.platform.idle_power(cfg) + self.platform.background_idle_power(cfg)
    }

    /// The lowest possible idle power of the whole processor subsystem: every
    /// cluster parked at its minimum operating point plus the SoC floor. This
    /// is the power that is drawn during a user session *regardless* of
    /// scheduling decisions. Precomputed at construction — the pre-ladder
    /// implementation re-derived the minimum-power configuration (an
    /// O(configs) power scan) on every call, on the hot path of every
    /// marginal-energy evaluation.
    pub fn baseline_idle_power(&self) -> PowerMw {
        self.ladder.baseline
    }

    /// [`DvfsModel::baseline_idle_power`] re-derived from the platform on
    /// every call (the pre-ladder implementation, kept for the differential
    /// tests).
    pub fn baseline_idle_power_reference(&self) -> PowerMw {
        let min_cfg = self.platform.min_power_config();
        self.idle_power(&min_cfg)
    }

    /// The *marginal* energy of executing `demand` on `cfg`: the energy above
    /// what the processor would have drawn idling for the same wall-clock
    /// time. Because the user session length is set by the user (not by how
    /// fast events execute), minimising marginal energy is the correct
    /// scheduling objective — the always-on floor is paid either way. This is
    /// the cost used in the EBS/PES/Oracle optimisation (Eqn. 5); measured
    /// session energy still includes the floor.
    pub fn marginal_energy(&self, demand: &CpuDemand, cfg: &AcmpConfig) -> EnergyUj {
        let time = self.execution_time(demand, cfg);
        let gross = self.execution_power(cfg).energy_over(time);
        let baseline = self.baseline_idle_power().energy_over(time);
        gross - baseline
    }

    /// [`DvfsModel::marginal_energy`] with every power term re-derived from
    /// the platform tables (the pre-ladder implementation, kept for the
    /// differential tests).
    pub fn marginal_energy_reference(&self, demand: &CpuDemand, cfg: &AcmpConfig) -> EnergyUj {
        let time = self.execution_time(demand, cfg);
        let gross = self.execution_power_reference(cfg).energy_over(time);
        let baseline = self.baseline_idle_power_reference().energy_over(time);
        gross - baseline
    }

    /// Recovers a [`CpuDemand`] from two latency observations of the *same*
    /// event workload taken at two different frequencies on the same core
    /// kind, by solving the linear system of Eqn. 1 — the online profiling
    /// step both EBS and PES perform the first two times an event is seen
    /// (Sec. 5.3).
    ///
    /// # Errors
    ///
    /// Returns [`AcmpError::DemandRecovery`] when the two observations use
    /// the same frequency or different core kinds, or when the observations
    /// are inconsistent (they would imply negative `Tmem` or `Ndep`, in which
    /// case the closest physically meaningful demand is unrecoverable).
    pub fn recover_demand(
        &self,
        obs_a: (AcmpConfig, TimeUs),
        obs_b: (AcmpConfig, TimeUs),
    ) -> Result<CpuDemand, AcmpError> {
        let (cfg_a, t_a) = obs_a;
        let (cfg_b, t_b) = obs_b;
        if cfg_a.core() != cfg_b.core() {
            return Err(AcmpError::DemandRecovery(
                "observations must come from the same core kind".into(),
            ));
        }
        if cfg_a.frequency() == cfg_b.frequency() {
            return Err(AcmpError::DemandRecovery(
                "observations must use two distinct frequencies".into(),
            ));
        }
        // T = Tmem + C/f  =>  C = (Ta - Tb) / (1/fa - 1/fb),  Tmem = Ta - C/fa
        let fa = cfg_a.frequency().as_mhz() as f64;
        let fb = cfg_b.frequency().as_mhz() as f64;
        let ta = t_a.as_micros() as f64;
        let tb = t_b.as_micros() as f64;
        let inv_diff = 1.0 / fa - 1.0 / fb;
        let cycles_on_core = (ta - tb) / inv_diff;
        if !cycles_on_core.is_finite() || cycles_on_core < 0.0 {
            return Err(AcmpError::DemandRecovery(
                "observations imply a negative cycle count".into(),
            ));
        }
        let t_mem = ta - cycles_on_core / fa;
        if t_mem < -1.0 {
            return Err(AcmpError::DemandRecovery(
                "observations imply a negative memory time".into(),
            ));
        }
        let ref_cycles = cycles_on_core * cfg_a.core().ipc_relative_to_a7();
        Ok(CpuDemand::new(
            TimeUs::from_micros(t_mem.max(0.0).round() as u64),
            CpuCycles::new(ref_cycles.round() as u64),
        ))
    }

    /// The cheapest (lowest marginal-energy) configuration that finishes
    /// `demand` within `budget`, or `None` if even the fastest configuration
    /// misses the budget (the Type I situation of Sec. 4.3). Evaluated over
    /// the precomputed ladder; schedulers holding a [`LadderCache`] can skip
    /// even the 17 fused evaluations when the demand repeats.
    pub fn cheapest_config_within(&self, demand: &CpuDemand, budget: TimeUs) -> Option<AcmpConfig> {
        select_cheapest(
            (0..self.ladder.len()).map(|i| {
                (
                    self.ladder.execution_time_at(demand, i),
                    self.ladder.marginal_energy_at(demand, i).as_microjoules(),
                    self.ladder.rungs[i].config,
                )
            }),
            budget,
        )
    }

    /// [`DvfsModel::cheapest_config_within`] driven entirely by the direct
    /// per-call model (the pre-ladder implementation, kept so golden-trace
    /// tests can replay decisions against the original math).
    pub fn cheapest_config_within_reference(
        &self,
        demand: &CpuDemand,
        budget: TimeUs,
    ) -> Option<AcmpConfig> {
        // One energy evaluation per candidate (a `min_by` on the lazily
        // recomputed energy costs two per comparison; this sits on every
        // reactive scheduling decision). Strictly-less keeps `min_by`'s
        // first-minimum tie-breaking.
        let mut best: Option<(AcmpConfig, f64)> = None;
        for cfg in self.platform.configs() {
            if self.execution_time(demand, cfg) > budget {
                continue;
            }
            let energy = self.marginal_energy_reference(demand, cfg).as_microjoules();
            assert!(energy.is_finite(), "energy is finite");
            match best {
                Some((_, cheapest)) if energy >= cheapest => {}
                _ => best = Some((*cfg, energy)),
            }
        }
        best.map(|(cfg, _)| cfg)
    }

    /// Latency of `demand` under the fastest configuration of the platform.
    pub fn best_case_latency(&self, demand: &CpuDemand) -> TimeUs {
        self.platform
            .configs()
            .iter()
            .map(|cfg| self.execution_time(demand, cfg))
            .min()
            .unwrap_or(TimeUs::ZERO)
    }

    /// Frequency of the config expressed for reporting, e.g. in Fig. 2 style
    /// timelines.
    pub fn describe(&self, cfg: &AcmpConfig) -> String {
        format!("{} ({} active)", cfg, self.execution_power(cfg))
    }
}

/// Convenience alias for a `(config, frequency)` observation pair used by
/// demand recovery.
pub type LatencyObservation = (AcmpConfig, TimeUs);

/// Returns the frequency of an observation; small helper used by schedulers'
/// profiling tables.
pub fn observation_frequency(obs: &LatencyObservation) -> FreqMhz {
    obs.0.frequency()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreKind;

    fn model_fixture() -> (Platform, CpuDemand) {
        let platform = Platform::exynos_5410();
        let demand = CpuDemand::new(TimeUs::from_millis(20), CpuCycles::new(300_000_000));
        (platform, demand)
    }

    #[test]
    fn latency_decreases_with_throughput() {
        let (platform, demand) = model_fixture();
        let model = DvfsModel::new(&platform);
        let latencies: Vec<u64> = platform
            .configs()
            .iter()
            .map(|cfg| model.execution_time(&demand, cfg).as_micros())
            .collect();
        // Configurations are sorted by effective throughput, so latency must
        // be non-increasing along the table.
        assert!(latencies.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn memory_time_is_frequency_independent() {
        let platform = Platform::exynos_5410();
        let model = DvfsModel::new(&platform);
        let pure_mem = CpuDemand::new(TimeUs::from_millis(7), CpuCycles::ZERO);
        for cfg in platform.configs() {
            assert_eq!(model.execution_time(&pure_mem, cfg), TimeUs::from_millis(7));
        }
    }

    #[test]
    fn energy_tradeoff_little_is_cheaper_but_slower() {
        let (platform, demand) = model_fixture();
        let model = DvfsModel::new(&platform);
        let big = platform.max_performance_config();
        let little = AcmpConfig::new(CoreKind::LittleA7, FreqMhz::new(600));
        assert!(model.execution_time(&demand, &big) < model.execution_time(&demand, &little));
        assert!(
            model.marginal_energy(&demand, &big).as_microjoules()
                > model.marginal_energy(&demand, &little).as_microjoules(),
            "big core should cost more marginal energy for the same work"
        );
        // The baseline idle floor is charged during execution regardless of
        // the configuration, so marginal energy is strictly below gross.
        assert!(
            model.marginal_energy(&demand, &big).as_microjoules()
                < model.execution_energy(&demand, &big).as_microjoules()
        );
    }

    #[test]
    fn demand_recovery_round_trips() {
        let (platform, demand) = model_fixture();
        let model = DvfsModel::new(&platform);
        let cfg_a = AcmpConfig::new(CoreKind::BigA15, FreqMhz::new(1000));
        let cfg_b = AcmpConfig::new(CoreKind::BigA15, FreqMhz::new(1600));
        let t_a = model.execution_time(&demand, &cfg_a);
        let t_b = model.execution_time(&demand, &cfg_b);
        let recovered = model.recover_demand((cfg_a, t_a), (cfg_b, t_b)).unwrap();
        let rel_err = |a: u64, b: u64| (a as f64 - b as f64).abs() / (b as f64).max(1.0);
        assert!(rel_err(recovered.t_mem().as_micros(), demand.t_mem().as_micros()) < 0.02);
        assert!(rel_err(recovered.ref_cycles().get(), demand.ref_cycles().get()) < 0.02);
    }

    #[test]
    fn demand_recovery_rejects_degenerate_observations() {
        let (platform, demand) = model_fixture();
        let model = DvfsModel::new(&platform);
        let cfg = AcmpConfig::new(CoreKind::BigA15, FreqMhz::new(1000));
        let t = model.execution_time(&demand, &cfg);
        assert!(model.recover_demand((cfg, t), (cfg, t)).is_err());
        let little = AcmpConfig::new(CoreKind::LittleA7, FreqMhz::new(600));
        assert!(model
            .recover_demand((cfg, t), (little, model.execution_time(&demand, &little)))
            .is_err());
        // Inconsistent observations: lower frequency reported *faster* time.
        let cfg_hi = AcmpConfig::new(CoreKind::BigA15, FreqMhz::new(1800));
        assert!(model
            .recover_demand(
                (cfg, TimeUs::from_millis(5)),
                (cfg_hi, TimeUs::from_millis(50))
            )
            .is_err());
    }

    #[test]
    fn cheapest_config_within_budget_prefers_low_energy() {
        let (platform, demand) = model_fixture();
        let model = DvfsModel::new(&platform);
        // A generous budget should pick something on the little cluster.
        let generous = model
            .cheapest_config_within(&demand, TimeUs::from_secs(10))
            .unwrap();
        assert_eq!(generous.core(), CoreKind::LittleA7);
        // A tight-but-feasible budget forces the big cluster.
        let tight_budget = model.execution_time(&demand, &platform.max_performance_config())
            + TimeUs::from_millis(1);
        let tight = model.cheapest_config_within(&demand, tight_budget).unwrap();
        assert_eq!(tight.core(), CoreKind::BigA15);
        // An impossible budget yields no configuration (Type I event).
        assert!(model
            .cheapest_config_within(&demand, TimeUs::from_micros(10))
            .is_none());
    }

    #[test]
    fn demand_combine_and_scale() {
        let a = CpuDemand::new(TimeUs::from_millis(2), CpuCycles::new(1_000));
        let b = CpuDemand::new(TimeUs::from_millis(3), CpuCycles::new(2_000));
        let c = a.combine(&b);
        assert_eq!(c.t_mem(), TimeUs::from_millis(5));
        assert_eq!(c.ref_cycles().get(), 3_000);
        let half = c.scale(0.5);
        assert_eq!(half.t_mem(), TimeUs::from_millis_f64(2.5));
        assert_eq!(half.ref_cycles().get(), 1_500);
    }

    #[test]
    fn ladder_matches_direct_model_bit_for_bit() {
        for platform in [Platform::exynos_5410(), Platform::tx2_parker()] {
            let model = DvfsModel::new(&platform);
            let ladder = model.ladder();
            assert_eq!(ladder.len(), platform.configs().len());
            assert_eq!(
                ladder.baseline_idle_power().as_milliwatts(),
                model.baseline_idle_power_reference().as_milliwatts()
            );
            let demands = [
                CpuDemand::ZERO,
                CpuDemand::new(TimeUs::from_micros(137), CpuCycles::new(999_999)),
                CpuDemand::new(TimeUs::from_millis(20), CpuCycles::new(300_000_000)),
            ];
            let mut points = Vec::new();
            for demand in &demands {
                ladder.eval_into(demand, &mut points);
                for (i, (point, cfg)) in points.iter().zip(platform.configs()).enumerate() {
                    assert_eq!(point.config, *cfg);
                    assert_eq!(point.time, model.execution_time(demand, cfg));
                    assert_eq!(
                        point.energy_uj.to_bits(),
                        model
                            .marginal_energy_reference(demand, cfg)
                            .as_microjoules()
                            .to_bits(),
                        "rung {i} energy must be bit-identical"
                    );
                }
            }
        }
    }

    #[test]
    fn frozen_rung_powers_match_the_platform_tables_bit_for_bit() {
        for platform in [Platform::exynos_5410(), Platform::tx2_parker()] {
            let ladder = DvfsLadder::for_platform(&platform);
            for (i, cfg) in platform.configs().iter().enumerate() {
                assert_eq!(ladder.rung_index(cfg), Some(i));
                let rung = &ladder.rungs()[i];
                let bits = |p: PowerMw| p.as_milliwatts().to_bits();
                assert_eq!(bits(rung.active_power), bits(platform.active_power(cfg)));
                assert_eq!(bits(rung.idle_power), bits(platform.idle_power(cfg)));
                assert_eq!(
                    bits(rung.background_power),
                    bits(platform.background_idle_power(cfg))
                );
                assert_eq!(
                    bits(rung.exec_power),
                    bits(platform.active_power(cfg) + platform.background_idle_power(cfg))
                );
            }
            let foreign = AcmpConfig::new(CoreKind::BigA15, FreqMhz::new(123));
            assert_eq!(ladder.rung_index(&foreign), None);
        }
    }

    #[test]
    #[should_panic(expected = "different platform")]
    fn mismatched_plane_is_rejected_at_construction() {
        let exynos = Platform::exynos_5410();
        let tx2 = Platform::tx2_parker();
        let plane = std::sync::Arc::new(DvfsLadder::for_platform(&tx2));
        let _ = DvfsModel::with_ladder(&exynos, plane);
    }

    #[test]
    fn shared_ladder_models_reuse_one_plane() {
        let platform = Platform::exynos_5410();
        let plane = std::sync::Arc::new(DvfsLadder::for_platform(&platform));
        let a = DvfsModel::with_ladder(&platform, std::sync::Arc::clone(&plane));
        let b = DvfsModel::with_ladder(&platform, std::sync::Arc::clone(&plane));
        assert!(std::sync::Arc::ptr_eq(a.shared_ladder(), b.shared_ladder()));
        // Shared-plane models answer exactly as freshly built ones.
        let fresh = DvfsModel::new(&platform);
        let demand = CpuDemand::new(TimeUs::from_millis(3), CpuCycles::new(90_000_000));
        for cfg in platform.configs() {
            assert_eq!(
                a.execution_time(&demand, cfg),
                fresh.execution_time(&demand, cfg)
            );
            assert_eq!(
                a.marginal_energy(&demand, cfg).as_microjoules().to_bits(),
                fresh
                    .marginal_energy(&demand, cfg)
                    .as_microjoules()
                    .to_bits()
            );
        }
    }

    #[test]
    fn ladder_cache_hits_on_repeated_demands_and_survives_eviction() {
        let platform = Platform::exynos_5410();
        let model = DvfsModel::new(&platform);
        let mut cache = LadderCache::new();
        let demand = CpuDemand::new(TimeUs::from_millis(3), CpuCycles::new(90_000_000));
        let first = cache.points(model.ladder(), &demand).to_vec();
        let again = cache.points(model.ladder(), &demand).to_vec();
        assert_eq!(first, again);
        assert_eq!(cache.stats(), (1, 1));
        // Push enough distinct demands through to wrap the ring, then ask
        // for one of the evicted rows again: it must be re-evaluated, not
        // served stale.
        for i in 0..40u64 {
            let d = CpuDemand::new(TimeUs::from_micros(i), CpuCycles::new(i * 1_000));
            let points = cache.points(model.ladder(), &d).to_vec();
            let mut expected = Vec::new();
            model.ladder().eval_into(&d, &mut expected);
            assert_eq!(points, expected);
        }
        let revisited = cache.points(model.ladder(), &demand).to_vec();
        assert_eq!(revisited, first);
        cache.clear();
        assert_eq!(cache.points(model.ladder(), &demand).to_vec(), first);
    }

    #[test]
    fn ladder_rows_expose_stably_sorted_orders() {
        let platform = Platform::exynos_5410();
        let model = DvfsModel::new(&platform);
        let mut cache = LadderCache::new();
        let demands = [
            CpuDemand::ZERO, // all-zero latencies/energies: pure tie-breaking
            CpuDemand::new(TimeUs::from_millis(3), CpuCycles::new(90_000_000)),
            CpuDemand::new(TimeUs::from_micros(137), CpuCycles::new(999_999)),
        ];
        for demand in &demands {
            // `points()` alone must not pay for the sorts; `row()` must.
            assert!(cache.points(model.ladder(), demand).len() == model.ladder().len());
            let row = cache.row(model.ladder(), demand);
            assert_eq!(row.points().len(), row.by_cost().len());
            assert_eq!(row.points().len(), row.by_duration().len());
            // Both orders are the exact permutation a stable sort over the
            // solver's `(duration_us, cost)` view of the row produces.
            let mut expect_cost: Vec<u32> = (0..row.points().len() as u32).collect();
            expect_cost.sort_by(|&a, &b| {
                row.points()[a as usize]
                    .energy_uj
                    .partial_cmp(&row.points()[b as usize].energy_uj)
                    .unwrap()
            });
            assert_eq!(row.by_cost(), expect_cost.as_slice());
            let mut expect_dur: Vec<u32> = (0..row.points().len() as u32).collect();
            expect_dur.sort_by_key(|&a| row.points()[a as usize].time.as_micros());
            assert_eq!(row.by_duration(), expect_dur.as_slice());
        }
        // A second `row()` of the same demand is a pure hit.
        let (hits_before, misses_before) = cache.stats();
        let _ = cache.row(model.ladder(), &demands[1]);
        assert_eq!(cache.stats(), (hits_before + 1, misses_before));
    }

    #[test]
    fn ladder_selection_matches_the_reference_selector() {
        let (platform, demand) = model_fixture();
        let model = DvfsModel::new(&platform);
        let mut points = Vec::new();
        model.ladder().eval_into(&demand, &mut points);
        for budget_us in [10, 28_000, 40_000, 75_000, 200_000, 10_000_000] {
            let budget = TimeUs::from_micros(budget_us);
            assert_eq!(
                DvfsLadder::cheapest_within(&points, budget),
                model.cheapest_config_within_reference(&demand, budget),
                "selection diverged at budget {budget_us}us"
            );
            assert_eq!(
                model.cheapest_config_within(&demand, budget),
                model.cheapest_config_within_reference(&demand, budget),
            );
        }
    }

    #[test]
    fn execution_power_falls_back_for_off_ladder_configs() {
        let platform = Platform::exynos_5410();
        let model = DvfsModel::new(&platform);
        // 1234 MHz is not an Exynos operating point; the model must still
        // answer, with the same value the direct derivation produces.
        let off = AcmpConfig::new(CoreKind::BigA15, FreqMhz::new(1234));
        assert_eq!(
            model.execution_power(&off).as_milliwatts(),
            model.execution_power_reference(&off).as_milliwatts()
        );
    }

    #[test]
    fn execution_power_includes_background_cluster() {
        let (platform, _) = model_fixture();
        let model = DvfsModel::new(&platform);
        let cfg = platform.max_performance_config();
        assert!(
            model.execution_power(&cfg).as_milliwatts()
                > platform.active_power(&cfg).as_milliwatts()
        );
    }

    #[test]
    fn best_case_latency_equals_fastest_config() {
        let (platform, demand) = model_fixture();
        let model = DvfsModel::new(&platform);
        assert_eq!(
            model.best_case_latency(&demand),
            model.execution_time(&demand, &platform.max_performance_config())
        );
    }
}
