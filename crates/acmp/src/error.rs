//! Error type for the ACMP platform model.

use std::error::Error;
use std::fmt;

use crate::config::AcmpConfig;

/// Errors produced by the `pes-acmp` crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AcmpError {
    /// A cluster or platform description was structurally invalid.
    InvalidCluster(String),
    /// A dense configuration index was out of range for the platform.
    UnknownConfig(usize),
    /// A `<core, frequency>` tuple is not an operating point of the platform.
    ConfigNotOnPlatform(AcmpConfig),
    /// Online demand recovery (Eqn. 1 system solve) failed.
    DemandRecovery(String),
    /// Power-table (de)serialisation failed.
    PowerTable(String),
}

impl fmt::Display for AcmpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcmpError::InvalidCluster(msg) => write!(f, "invalid cluster description: {msg}"),
            AcmpError::UnknownConfig(idx) => write!(f, "configuration index {idx} is out of range"),
            AcmpError::ConfigNotOnPlatform(cfg) => {
                write!(
                    f,
                    "configuration {cfg} is not an operating point of this platform"
                )
            }
            AcmpError::DemandRecovery(msg) => write!(f, "demand recovery failed: {msg}"),
            AcmpError::PowerTable(msg) => write!(f, "power table serialisation failed: {msg}"),
        }
    }
}

impl Error for AcmpError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreKind;
    use crate::units::FreqMhz;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cfg = AcmpConfig::new(CoreKind::BigA15, FreqMhz::new(123));
        let errs: Vec<String> = vec![
            AcmpError::InvalidCluster("empty".into()).to_string(),
            AcmpError::UnknownConfig(42).to_string(),
            AcmpError::ConfigNotOnPlatform(cfg).to_string(),
            AcmpError::DemandRecovery("same frequency".into()).to_string(),
            AcmpError::PowerTable("bad line".into()).to_string(),
        ];
        for e in errs {
            assert!(!e.is_empty());
            assert!(e.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync_and_std_error() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<AcmpError>();
    }
}
