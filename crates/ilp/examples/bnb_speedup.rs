//! Compares the optimised branch-and-bound against the pre-optimisation
//! reference across window sizes and deadline-pressure levels, asserting the
//! two return identical schedules wherever both finish.
//!
//! ```text
//! cargo run -p pes_ilp --release --example bnb_speedup
//! ```

use pes_ilp::{ScheduleItem, ScheduleOption, ScheduleProblem, ScheduleSolution, SolveScratch};
use std::time::Instant;
fn window(n: u64, slack_frac: f64) -> ScheduleProblem {
    let items: Vec<ScheduleItem> = (0..n)
        .map(|i| {
            let opts: Vec<ScheduleOption> = (0..17)
                .map(|j| ScheduleOption {
                    choice: j,
                    duration_us: 280_000u64.saturating_sub(j as u64 * 12_000),
                    cost: 1.0 + 0.25 * (j as f64).powf(1.7),
                })
                .collect();
            ScheduleItem {
                release_us: i * 60_000,
                deadline_us: ((i + 1) as f64 * 280_000.0 * slack_frac) as u64,
                options: opts,
            }
        })
        .collect();
    ScheduleProblem::new(0, items)
}
fn main() {
    for slack in [0.55, 0.7, 0.85] {
        for n in [6u64, 8, 10, 12] {
            let p = window(n, slack);
            let a = match p.solve() {
                Ok(a) => a,
                Err(e) => {
                    println!("slack={slack} n={n:2} optimised: {e:?}");
                    continue;
                }
            };
            let b = match p.solve_reference() {
                Ok(b) => b,
                Err(e) => {
                    println!(
                        "slack={slack} n={n:2} reference: {e:?} (optimised nodes {})",
                        a.nodes_explored
                    );
                    continue;
                }
            };
            assert_eq!(a.selected, b.selected, "n={n} slack={slack}");
            assert_eq!(a.violations, b.violations);
            let reps = 50;
            let mut scratch = SolveScratch::new();
            let mut sol = ScheduleSolution::default();
            let t0 = Instant::now();
            for _ in 0..reps {
                p.solve_with(&mut scratch, &mut sol).unwrap();
                std::hint::black_box(&sol);
            }
            let opt_t = t0.elapsed().as_secs_f64() / reps as f64;
            let t0 = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(p.solve_reference().unwrap());
            }
            let ref_t = t0.elapsed().as_secs_f64() / reps as f64;
            println!("slack={slack} n={n:2} viol={} nodes {} -> {}  time {:.1}us -> {:.1}us  speedup {:.1}x",
                a.violations, b.nodes_explored, a.nodes_explored, ref_t*1e6, opt_t*1e6, ref_t/opt_t);
        }
    }
}
