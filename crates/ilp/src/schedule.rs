//! The PES-specialised constrained-optimisation formulation (Eqn. 2–5).
//!
//! The scheduling task assigns exactly one ACMP configuration to each event
//! in a window of outstanding + predicted events so that every event's
//! deadline is met and total energy is minimised. Events execute
//! sequentially on the runtime's main thread, so the only coupling between
//! events is the cumulative completion time — which is what makes a
//! specialised branch-and-bound over per-event choices dramatically faster
//! than the generic 0/1 ILP encoding (the Sec. 5.5 argument for a custom
//! solver). Times are plain microseconds and costs are abstract (energy in
//! microjoules in the PES use), keeping this crate dependency-free.

use crate::error::IlpError;
use crate::linear::{Comparison, Constraint, LinearExpr};
use crate::solver::{exactly_one, IlpProblem};

/// One selectable execution option for an event: a configuration index, the
/// event latency under that configuration, and its (energy) cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleOption {
    /// Opaque configuration identifier carried through to the solution.
    pub choice: usize,
    /// Event latency under this option, in microseconds.
    pub duration_us: u64,
    /// Cost (energy) of this option; must be non-negative.
    pub cost: f64,
}

/// One event in the scheduling window.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleItem {
    /// The earliest time the event may start executing, in microseconds.
    /// For outstanding events this is their arrival time; for predicted
    /// (speculative) events it is the current time — they may start as soon
    /// as the preceding event finishes.
    pub release_us: u64,
    /// The absolute deadline (trigger time plus QoS target), in microseconds.
    pub deadline_us: u64,
    /// The candidate execution options (one per ACMP configuration).
    pub options: Vec<ScheduleOption>,
}

/// A solved schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleSolution {
    /// For each event, the index into its `options` vector.
    pub selected: Vec<usize>,
    /// For each event, the chosen option's `choice` identifier.
    pub choices: Vec<usize>,
    /// For each event, its completion time in microseconds.
    pub finish_us: Vec<u64>,
    /// Total cost (sum of chosen option costs).
    pub total_cost: f64,
    /// Number of events whose deadline is missed by this schedule. Zero when
    /// the instance is feasible.
    pub violations: usize,
    /// Number of search nodes explored.
    pub nodes_explored: usize,
}

/// The scheduling problem: a window of events starting no earlier than
/// `start_us`.
///
/// # Examples
///
/// ```
/// use pes_ilp::{ScheduleItem, ScheduleOption, ScheduleProblem};
///
/// // Two events; the second has a tight deadline, so the first must pick its
/// // faster (more expensive) option even though a cheaper one exists.
/// let items = vec![
///     ScheduleItem {
///         release_us: 0,
///         deadline_us: 1_000,
///         options: vec![
///             ScheduleOption { choice: 0, duration_us: 900, cost: 1.0 },
///             ScheduleOption { choice: 1, duration_us: 400, cost: 3.0 },
///         ],
///     },
///     ScheduleItem {
///         release_us: 0,
///         deadline_us: 800,
///         options: vec![
///             ScheduleOption { choice: 0, duration_us: 400, cost: 1.0 },
///             ScheduleOption { choice: 1, duration_us: 200, cost: 3.0 },
///         ],
///     },
/// ];
/// let solution = ScheduleProblem::new(0, items).solve().unwrap();
/// assert_eq!(solution.violations, 0);
/// assert_eq!(solution.choices, vec![1, 0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleProblem {
    start_us: u64,
    items: Vec<ScheduleItem>,
    node_limit: usize,
}

/// Cost penalty applied per missed deadline so that minimising the penalised
/// cost is lexicographic: first minimise violations, then energy.
const VIOLATION_PENALTY: f64 = 1.0e15;

impl ScheduleProblem {
    /// Creates a problem whose first event may start at `start_us`.
    pub fn new(start_us: u64, items: Vec<ScheduleItem>) -> Self {
        ScheduleProblem {
            start_us,
            items,
            node_limit: 5_000_000,
        }
    }

    /// The events in the window.
    pub fn items(&self) -> &[ScheduleItem] {
        &self.items
    }

    /// Caps the number of branch-and-bound nodes.
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.node_limit = limit.max(1);
        self
    }

    /// Solves the window with the specialised branch and bound.
    ///
    /// The objective is lexicographic: minimise the number of missed
    /// deadlines first (the instance may be infeasible when a Type I event is
    /// present), then total cost.
    ///
    /// # Errors
    ///
    /// * [`IlpError::EmptyProblem`] when the window has no events or an event
    ///   has no options.
    /// * [`IlpError::NodeLimit`] when the search exceeds the node limit.
    pub fn solve(&self) -> Result<ScheduleSolution, IlpError> {
        if self.items.is_empty() || self.items.iter().any(|i| i.options.is_empty()) {
            return Err(IlpError::EmptyProblem);
        }
        // Pre-sort option order per item by cost so the first dive is greedy
        // and produces a good incumbent quickly.
        let mut order: Vec<Vec<usize>> = Vec::with_capacity(self.items.len());
        for item in &self.items {
            let mut idx: Vec<usize> = (0..item.options.len()).collect();
            idx.sort_by(|&a, &b| {
                item.options[a]
                    .cost
                    .partial_cmp(&item.options[b].cost)
                    .expect("costs are finite")
            });
            order.push(idx);
        }
        // Suffix minimum cost: lower bound on the remaining cost from item i.
        let mut suffix_min_cost = vec![0.0; self.items.len() + 1];
        for i in (0..self.items.len()).rev() {
            let min_cost = self.items[i]
                .options
                .iter()
                .map(|o| o.cost)
                .fold(f64::INFINITY, f64::min);
            suffix_min_cost[i] = suffix_min_cost[i + 1] + min_cost;
        }
        // Suffix minimum duration: used to detect unavoidable future misses
        // early (admissible, so pruning stays exact for the violation count).
        let mut state = BranchState {
            selected: vec![0; self.items.len()],
            best: None,
            nodes: 0,
        };
        self.branch(
            &mut state,
            0,
            self.start_us,
            0.0,
            0,
            &order,
            &suffix_min_cost,
        )?;
        let (selected, penalised) = state.best.expect("at least one full assignment is explored");
        let violations = (penalised / VIOLATION_PENALTY).round() as usize;
        let mut finish_us = Vec::with_capacity(self.items.len());
        let mut cursor = self.start_us;
        let mut total_cost = 0.0;
        let mut choices = Vec::with_capacity(self.items.len());
        for (item, &sel) in self.items.iter().zip(&selected) {
            let opt = item.options[sel];
            let start = cursor.max(item.release_us);
            cursor = start + opt.duration_us;
            finish_us.push(cursor);
            total_cost += opt.cost;
            choices.push(opt.choice);
        }
        Ok(ScheduleSolution {
            selected,
            choices,
            finish_us,
            total_cost,
            violations,
            nodes_explored: state.nodes,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn branch(
        &self,
        state: &mut BranchState,
        index: usize,
        cursor_us: u64,
        cost: f64,
        violations: usize,
        order: &[Vec<usize>],
        suffix_min_cost: &[f64],
    ) -> Result<(), IlpError> {
        state.nodes += 1;
        if state.nodes > self.node_limit {
            return Err(IlpError::NodeLimit(self.node_limit));
        }
        let penalised = cost + violations as f64 * VIOLATION_PENALTY;
        // Bound: even with the cheapest remaining options and no further
        // violations, can this branch beat the incumbent?
        if let Some((_, best)) = &state.best {
            if penalised + suffix_min_cost[index] >= *best - 1e-9 {
                return Ok(());
            }
        }
        if index == self.items.len() {
            let better = match &state.best {
                Some((_, best)) => penalised < *best - 1e-9,
                None => true,
            };
            if better {
                state.best = Some((state.selected.clone(), penalised));
            }
            return Ok(());
        }
        let item = &self.items[index];
        for &opt_idx in &order[index] {
            let opt = item.options[opt_idx];
            let start = cursor_us.max(item.release_us);
            let finish = start + opt.duration_us;
            let missed = finish > item.deadline_us;
            state.selected[index] = opt_idx;
            self.branch(
                state,
                index + 1,
                finish,
                cost + opt.cost,
                violations + usize::from(missed),
                order,
                suffix_min_cost,
            )?;
        }
        Ok(())
    }

    /// A greedy, EBS-like schedule: every event independently picks the
    /// cheapest option that meets its deadline given the time already
    /// committed to preceding events, falling back to the fastest option when
    /// none fits. Used as a comparison point and as a quick incumbent.
    pub fn solve_greedy(&self) -> Result<ScheduleSolution, IlpError> {
        if self.items.is_empty() || self.items.iter().any(|i| i.options.is_empty()) {
            return Err(IlpError::EmptyProblem);
        }
        let mut cursor = self.start_us;
        let mut selected = Vec::new();
        let mut choices = Vec::new();
        let mut finish_us = Vec::new();
        let mut total_cost = 0.0;
        let mut violations = 0;
        for item in &self.items {
            let start = cursor.max(item.release_us);
            let feasible = item
                .options
                .iter()
                .enumerate()
                .filter(|(_, o)| start + o.duration_us <= item.deadline_us)
                .min_by(|a, b| a.1.cost.partial_cmp(&b.1.cost).expect("finite"));
            let (sel, opt) = match feasible {
                Some((i, o)) => (i, *o),
                None => {
                    let (i, o) = item
                        .options
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, o)| o.duration_us)
                        .expect("non-empty options");
                    (i, *o)
                }
            };
            cursor = start + opt.duration_us;
            if cursor > item.deadline_us {
                violations += 1;
            }
            selected.push(sel);
            choices.push(opt.choice);
            finish_us.push(cursor);
            total_cost += opt.cost;
        }
        Ok(ScheduleSolution {
            selected,
            choices,
            finish_us,
            total_cost,
            violations,
            nodes_explored: self.items.len(),
        })
    }

    /// Encodes this problem as a generic 0/1 ILP (variables `τ(i, j)` with the
    /// Eqn. 2 selection constraints and Eqn. 4 cumulative-deadline
    /// constraints) for the specialised-vs-generic ablation.
    ///
    /// The encoding assumes back-to-back execution from `start_us` (release
    /// times earlier than the running completion time, which holds for the
    /// windows PES builds), matching the paper's formulation.
    pub fn to_generic_ilp(&self) -> IlpProblem {
        let var = |item: usize, opt: usize, items: &[ScheduleItem]| -> usize {
            items[..item].iter().map(|i| i.options.len()).sum::<usize>() + opt
        };
        let mut objective = LinearExpr::new();
        for (i, item) in self.items.iter().enumerate() {
            for (j, opt) in item.options.iter().enumerate() {
                objective.add_term(var(i, j, &self.items), opt.cost);
            }
        }
        let mut problem = IlpProblem::minimize(objective);
        for (i, item) in self.items.iter().enumerate() {
            problem.add_constraint(exactly_one(
                (0..item.options.len()).map(|j| var(i, j, &self.items)),
            ));
            // Cumulative deadline: sum of chosen durations of events 0..=i
            // must not exceed deadline(i) - start.
            let mut expr = LinearExpr::new();
            for (k, prior) in self.items.iter().enumerate().take(i + 1) {
                for (j, opt) in prior.options.iter().enumerate() {
                    expr.add_term(var(k, j, &self.items), opt.duration_us as f64);
                }
            }
            let budget = item.deadline_us.saturating_sub(self.start_us) as f64;
            problem.add_constraint(Constraint::new(expr, Comparison::LessEq, budget));
        }
        problem
    }
}

struct BranchState {
    selected: Vec<usize>,
    best: Option<(Vec<usize>, f64)>,
    nodes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opt(choice: usize, duration_us: u64, cost: f64) -> ScheduleOption {
        ScheduleOption {
            choice,
            duration_us,
            cost,
        }
    }

    /// The Fig. 2 situation in miniature: a slack-rich first event followed by
    /// a heavy second event with a tight deadline. A reactive (greedy) policy
    /// lets E1 run slowly and then cannot save E2; the global solver shortens
    /// E1 to create room.
    fn fig2_like_items() -> Vec<ScheduleItem> {
        vec![
            ScheduleItem {
                release_us: 0,
                deadline_us: 3_000_000, // a load with a 3 s target
                options: vec![opt(0, 2_500_000, 10.0), opt(1, 1_000_000, 25.0)],
            },
            ScheduleItem {
                release_us: 500_000,
                deadline_us: 1_800_000, // heavy tap triggered at 1.5 s, 300 ms target
                options: vec![opt(0, 1_500_000, 8.0), opt(1, 700_000, 20.0)],
            },
        ]
    }

    #[test]
    fn global_solver_coordinates_across_events() {
        let problem = ScheduleProblem::new(0, fig2_like_items());
        let optimal = problem.solve().unwrap();
        let greedy = problem.solve_greedy().unwrap();
        // Greedy keeps E1 cheap (it meets its own deadline) and then E2
        // cannot finish by 1.8 s even on its fast option: 2.5 s + 0.7 s.
        assert_eq!(greedy.violations, 1);
        // The global schedule speeds up E1 so E2 meets its deadline.
        assert_eq!(optimal.violations, 0);
        assert_eq!(optimal.choices[0], 1);
        assert!(optimal.finish_us[1] <= 1_800_000);
        // Even with E1 sped up, only E2's fast option fits before 1.8 s.
        assert_eq!(optimal.choices[1], 1);
        assert!(optimal.total_cost > greedy.total_cost,
            "meeting every deadline costs more energy than the greedy schedule spends");
    }

    #[test]
    fn cheapest_options_win_when_deadlines_are_loose() {
        let items = vec![
            ScheduleItem {
                release_us: 0,
                deadline_us: 10_000_000,
                options: vec![opt(0, 100_000, 1.0), opt(1, 50_000, 9.0)],
            },
            ScheduleItem {
                release_us: 0,
                deadline_us: 10_000_000,
                options: vec![opt(0, 100_000, 2.0), opt(1, 50_000, 7.0)],
            },
        ];
        let sol = ScheduleProblem::new(0, items).solve().unwrap();
        assert_eq!(sol.choices, vec![0, 0]);
        assert!((sol.total_cost - 3.0).abs() < 1e-9);
        assert_eq!(sol.violations, 0);
    }

    #[test]
    fn infeasible_windows_minimise_violations_first() {
        // Both events cannot possibly meet their deadlines; the solver should
        // report exactly the unavoidable number of violations rather than
        // failing.
        let items = vec![
            ScheduleItem {
                release_us: 0,
                deadline_us: 10,
                options: vec![opt(0, 1_000, 1.0)],
            },
            ScheduleItem {
                release_us: 0,
                deadline_us: 2_000,
                options: vec![opt(0, 500, 1.0), opt(1, 3_000, 0.5)],
            },
        ];
        let sol = ScheduleProblem::new(0, items).solve().unwrap();
        assert_eq!(sol.violations, 1);
        // The second event still meets its deadline (1000 + 500 <= 2000),
        // which requires picking its faster, more expensive option.
        assert_eq!(sol.choices[1], 0);
    }

    #[test]
    fn release_times_delay_execution() {
        let items = vec![ScheduleItem {
            release_us: 5_000,
            deadline_us: 7_000,
            options: vec![opt(0, 1_000, 1.0)],
        }];
        let sol = ScheduleProblem::new(0, items).solve().unwrap();
        assert_eq!(sol.finish_us, vec![6_000]);
        assert_eq!(sol.violations, 0);
    }

    #[test]
    fn empty_problems_are_rejected() {
        assert_eq!(
            ScheduleProblem::new(0, vec![]).solve().unwrap_err(),
            IlpError::EmptyProblem
        );
        let no_options = vec![ScheduleItem {
            release_us: 0,
            deadline_us: 10,
            options: vec![],
        }];
        assert_eq!(
            ScheduleProblem::new(0, no_options).solve().unwrap_err(),
            IlpError::EmptyProblem
        );
    }

    #[test]
    fn node_limit_is_enforced() {
        let items: Vec<ScheduleItem> = (0..12)
            .map(|i| ScheduleItem {
                release_us: 0,
                deadline_us: 1_000_000,
                options: (0..8).map(|j| opt(j, 100 + j as u64, (i + j) as f64)).collect(),
            })
            .collect();
        let problem = ScheduleProblem::new(0, items).with_node_limit(5);
        assert!(matches!(problem.solve(), Err(IlpError::NodeLimit(5))));
    }

    #[test]
    fn specialised_and_generic_solvers_agree() {
        let problem = ScheduleProblem::new(0, fig2_like_items());
        let specialised = problem.solve().unwrap();
        let generic = problem.to_generic_ilp().solve().unwrap();
        // Decode the generic assignment back into per-event choices.
        let mut offset = 0;
        let mut generic_cost = 0.0;
        for item in problem.items() {
            let picked: Vec<usize> = (0..item.options.len())
                .filter(|j| generic.assignment[offset + j])
                .collect();
            assert_eq!(picked.len(), 1, "exactly one option per event");
            generic_cost += item.options[picked[0]].cost;
            offset += item.options.len();
        }
        assert!((generic_cost - specialised.total_cost).abs() < 1e-6);
    }

    #[test]
    fn greedy_never_beats_the_optimal_cost_on_feasible_instances() {
        let items = vec![
            ScheduleItem {
                release_us: 0,
                deadline_us: 400_000,
                options: vec![opt(0, 300_000, 2.0), opt(1, 120_000, 6.0)],
            },
            ScheduleItem {
                release_us: 100_000,
                deadline_us: 600_000,
                options: vec![opt(0, 250_000, 2.0), opt(1, 100_000, 5.0)],
            },
            ScheduleItem {
                release_us: 200_000,
                deadline_us: 700_000,
                options: vec![opt(0, 200_000, 1.5), opt(1, 90_000, 4.0)],
            },
        ];
        let problem = ScheduleProblem::new(0, items);
        let optimal = problem.solve().unwrap();
        let greedy = problem.solve_greedy().unwrap();
        assert!(optimal.violations <= greedy.violations);
        if optimal.violations == greedy.violations {
            assert!(optimal.total_cost <= greedy.total_cost + 1e-9);
        }
    }

    #[test]
    fn finish_times_are_monotone_and_consistent() {
        let problem = ScheduleProblem::new(50, fig2_like_items());
        let sol = problem.solve().unwrap();
        assert!(sol.finish_us.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(sol.finish_us.len(), problem.items().len());
        assert_eq!(sol.selected.len(), problem.items().len());
    }
}
