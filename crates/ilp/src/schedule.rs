//! The PES-specialised constrained-optimisation formulation (Eqn. 2–5).
//!
//! The scheduling task assigns exactly one ACMP configuration to each event
//! in a window of outstanding + predicted events so that every event's
//! deadline is met and total energy is minimised. Events execute
//! sequentially on the runtime's main thread, so the only coupling between
//! events is the cumulative completion time — which is what makes a
//! specialised branch-and-bound over per-event choices dramatically faster
//! than the generic 0/1 ILP encoding (the Sec. 5.5 argument for a custom
//! solver). Times are plain microseconds and costs are abstract (energy in
//! microjoules in the PES use), keeping this crate dependency-free.
//!
//! # Solver architecture
//!
//! `solve` sits on the critical path of every PES scheduling decision
//! (Sec. 5.5 budgets ~10 ms amortised per solve), so the branch-and-bound is
//! engineered to be allocation-free per search node:
//!
//! * the cost-sorted option order and the admissible lower-bound tables
//!   (per-item minimum durations/costs and duration-sorted prefix-minimum
//!   cost arrays) are computed **once per problem** at construction and
//!   cached in [`ScheduleProblem`], so repeated solves of the same window —
//!   the common case in the PES runtime, which re-plans overlapping windows
//!   — skip the per-call sort entirely;
//! * the search reuses one scratch assignment buffer and copies it into a
//!   preallocated incumbent buffer instead of cloning a fresh `Vec` at every
//!   improved incumbent;
//! * unavoidable future deadline misses are detected early from the
//!   minimum-duration slack table, pruning entire subtrees whose violation
//!   count can no longer beat the incumbent (the bound is admissible, so
//!   pruning never changes the returned optimum);
//! * [`ScheduleProblem::solve_with`] accepts a caller-owned
//!   [`SolveScratch`], letting the runtime keep one scratch arena alive
//!   across all solves of a session replay;
//! * under a node budget, an **adaptive probe** periodically projects the
//!   search's total size from the fraction of the enumeration space already
//!   covered; once the projection exceeds the budget the depth-first entry
//!   points ([`ScheduleProblem::solve`]/[`ScheduleProblem::solve_with`])
//!   drop the earliest-finish scan bound and burn its remaining nodes
//!   through a lean suffix-floor-only loop, faster per node than the
//!   reference solver. Searches the bound *does* finish (the PES-scale 6×17
//!   window under the runtime's 200 k budget) keep it and return the exact
//!   optimum.
//!
//! # Anytime tier
//!
//! The depth-first capped search is all-or-nothing: at budget exhaustion it
//! reports [`IlpError::NodeLimit`] and the runtime used to cliff-drop to the
//! greedy schedule, however close the search was to an optimum.
//! [`ScheduleProblem::solve_anytime_with`] removes the cliff. It runs the
//! same depth-first search for the exact tier — completing searches return
//! schedules bit-identical to [`ScheduleProblem::solve_reference`] — but
//! when the adaptive probe concludes the budget is provably insufficient
//! (or the budget runs out mid-search), it switches to a **best-first
//! incumbent search**: a priority queue ordered by the admissible
//! earliest-finish lower bound, seeded with the better of the greedy
//! schedule and the depth-first phase's incumbent, that keeps improving the
//! incumbent until the remaining node budget is spent. The returned
//! schedule is therefore *never worse than greedy* (and usually much
//! better), and the tier is reported via [`SolveTier`] so callers and tests
//! can distinguish a proven optimum from a best incumbent.
//!
//! The pre-optimisation solver is retained as
//! [`ScheduleProblem::solve_reference`] so property tests can assert the
//! optimised search returns identical schedules.

use std::collections::BinaryHeap;

use crate::error::IlpError;
use crate::linear::{Comparison, Constraint, LinearExpr};
use crate::solver::{exactly_one, IlpProblem};

/// Why a bounded search stopped before completing (internal control flow).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SearchStop {
    /// The node budget is spent.
    Budget,
    /// The adaptive probe concluded the budget is provably insufficient (an
    /// anytime search unwinds here and hands over to the best-first tier).
    Hopeless,
}

/// The quality tier of an anytime solve
/// (see [`ScheduleProblem::solve_anytime_with`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveTier {
    /// The depth-first search completed within the node budget: the returned
    /// schedule is the exact optimum, bit-identical to
    /// [`ScheduleProblem::solve_reference`].
    Exact,
    /// The node budget was (provably or actually) insufficient: the returned
    /// schedule is the best incumbent the best-first tier found — never
    /// worse than the greedy schedule, possibly (unproven) optimal.
    Incumbent,
}

/// The entry tier a caller selects *before* a bounded solve starts: how much
/// of the node budget the search is allowed to spend. Where [`SolveTier`]
/// reports the quality a solve *achieved*, `SolveEntry` is the knob routing
/// layers (the fleet's predicted-cost router, the degradation ladder) turn
/// to pick how hard the solver should even try. The mapping to a concrete
/// node budget lives here so every caller caps identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveEntry {
    /// Spend the full node budget: depth-first to the proven optimum when
    /// the budget allows it.
    Exact,
    /// Cap the budget at the anytime ceiling: best incumbent under the cap.
    Anytime,
    /// A single node: the greedy root schedule, no search.
    Greedy,
}

impl SolveEntry {
    /// Caps `node_limit` for this entry tier. `anytime_cap` is the ceiling
    /// the anytime tier may spend (callers pass their ladder's constant so
    /// the cap stays in one place per policy).
    #[must_use]
    pub fn cap_node_limit(self, node_limit: usize, anytime_cap: usize) -> usize {
        match self {
            SolveEntry::Exact => node_limit,
            SolveEntry::Anytime => node_limit.min(anytime_cap),
            SolveEntry::Greedy => 1,
        }
    }

    /// Short lowercase label used in reports and journals.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SolveEntry::Exact => "exact",
            SolveEntry::Anytime => "anytime",
            SolveEntry::Greedy => "greedy",
        }
    }
}

/// One open node of the best-first incumbent search: a partial assignment of
/// items `0..index`, reached at `cursor_us` with the accumulated `cost` and
/// `violations`, whose admissible lower bound is `bound`. The path is stored
/// as an index into the scratch arena of `(parent, option)` links. Ordered
/// so that [`BinaryHeap`] pops the *smallest* bound first, ties broken by
/// insertion order (`seq`) for determinism.
#[derive(Debug, Clone, Copy)]
struct OpenNode {
    bound: f64,
    seq: u32,
    arena: u32,
    index: u32,
    cursor_us: u64,
    cost: f64,
    violations: u32,
}

impl PartialEq for OpenNode {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for OpenNode {}

impl PartialOrd for OpenNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OpenNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: the max-heap then yields the lowest bound, oldest first.
        other
            .bound
            .total_cmp(&self.bound)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// One selectable execution option for an event: a configuration index, the
/// event latency under that configuration, and its (energy) cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleOption {
    /// Opaque configuration identifier carried through to the solution.
    pub choice: usize,
    /// Event latency under this option, in microseconds.
    pub duration_us: u64,
    /// Cost (energy) of this option; must be non-negative.
    pub cost: f64,
}

/// One event in the scheduling window.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleItem {
    /// The earliest time the event may start executing, in microseconds.
    /// For outstanding events this is their arrival time; for predicted
    /// (speculative) events it is the current time — they may start as soon
    /// as the preceding event finishes.
    pub release_us: u64,
    /// The absolute deadline (trigger time plus QoS target), in microseconds.
    pub deadline_us: u64,
    /// The candidate execution options (one per ACMP configuration).
    pub options: Vec<ScheduleOption>,
}

impl ScheduleItem {
    /// Overwrites the option list from `(duration_us, cost)` pairs in choice
    /// order, reusing the existing allocation. This is how the PES runtime
    /// pours a precomputed per-configuration latency/energy ladder row into
    /// the node-expansion cost table without rebuilding `ScheduleOption`s by
    /// hand (the `choice` of each option is its position, matching the
    /// platform's configuration indices).
    pub fn assign_options<I>(&mut self, options: I)
    where
        I: IntoIterator<Item = (u64, f64)>,
    {
        self.options.clear();
        self.options.extend(options.into_iter().enumerate().map(
            |(choice, (duration_us, cost))| ScheduleOption {
                choice,
                duration_us,
                cost,
            },
        ));
    }
}

/// Pre-sorted option orders for one item of a (re-)posed window, supplied
/// by callers that already hold the option rows sorted — the PES runtime's
/// DVFS ladder cache memoises its 17-point rows together with exactly these
/// two permutations.
///
/// Both orders must be **stable** sorts of `0..options.len()` over the
/// item's option keys: `by_cost` ascending by `ScheduleOption::cost`,
/// `by_duration` ascending by `ScheduleOption::duration_us`, ties keeping
/// index order in both. [`ScheduleProblem::rebuild_sorted`] consumes them to
/// build its solver tables without sorting, bit-identical to the sorting
/// path (`debug_assert`ed, and pinned by the workspace proptests).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OptionOrder {
    /// Option indices sorted ascending by cost (stable).
    pub by_cost: Vec<u32>,
    /// Option indices sorted ascending by duration (stable).
    pub by_duration: Vec<u32>,
}

impl OptionOrder {
    /// Builds the canonical stable orders of `options`: exactly the
    /// permutations [`ScheduleProblem`]'s own table build produces, with
    /// identical tie-breaking. This is the reference implementation the
    /// bit-identity tests compare external row providers (the DVFS ladder
    /// cache) against.
    // The comparator `expect` restates a problem invariant: option costs
    // are finite energies, so the partial ordering is total here.
    #[allow(clippy::expect_used)]
    pub fn from_options(options: &[ScheduleOption]) -> Self {
        let mut by_cost: Vec<u32> = (0..options.len() as u32).collect();
        by_cost.sort_by(|&a, &b| {
            options[a as usize]
                .cost
                .partial_cmp(&options[b as usize].cost)
                .expect("costs are finite")
        });
        let mut by_duration: Vec<u32> = (0..options.len() as u32).collect();
        by_duration.sort_by_key(|&a| options[a as usize].duration_us);
        OptionOrder {
            by_cost,
            by_duration,
        }
    }

    /// Whether this order is a valid stable-sorted view of `options` — the
    /// contract [`ScheduleProblem::rebuild_sorted`] `debug_assert`s.
    pub fn is_valid_for(&self, options: &[ScheduleOption]) -> bool {
        let stable_perm = |perm: &[u32], key_le: &dyn Fn(u32, u32) -> bool| {
            perm.len() == options.len()
                && {
                    let mut seen = vec![false; options.len()];
                    perm.iter().all(|&i| {
                        let fresh = (i as usize) < options.len() && !seen[i as usize];
                        if fresh {
                            seen[i as usize] = true;
                        }
                        fresh
                    })
                }
                && perm.windows(2).all(|w| key_le(w[0], w[1]))
        };
        stable_perm(&self.by_cost, &|a, b| {
            let (ca, cb) = (options[a as usize].cost, options[b as usize].cost);
            ca < cb || (ca == cb && a < b)
        }) && stable_perm(&self.by_duration, &|a, b| {
            let (da, db) = (
                options[a as usize].duration_us,
                options[b as usize].duration_us,
            );
            da < db || (da == db && a < b)
        })
    }
}

/// A solved schedule.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScheduleSolution {
    /// For each event, the index into its `options` vector.
    pub selected: Vec<usize>,
    /// For each event, the chosen option's `choice` identifier.
    pub choices: Vec<usize>,
    /// For each event, its completion time in microseconds.
    pub finish_us: Vec<u64>,
    /// Total cost (sum of chosen option costs).
    pub total_cost: f64,
    /// Number of events whose deadline is missed by this schedule. Zero when
    /// the instance is feasible.
    pub violations: usize,
    /// Number of search nodes explored.
    pub nodes_explored: usize,
}

/// Reusable search state for [`ScheduleProblem::solve_with`]: the scratch
/// assignment, the incumbent buffer and the node counter. Keeping one of
/// these alive across solves makes the branch-and-bound allocation-free
/// after the first window of a given size.
#[derive(Debug, Clone, Default)]
pub struct SolveScratch {
    /// Current partial assignment (option index per item).
    selected: Vec<usize>,
    /// Best complete assignment found so far.
    best_selected: Vec<usize>,
    /// Penalised cost of `best_selected`; `f64::INFINITY` when no incumbent.
    best_penalised: f64,
    /// Whether `best_selected` holds a complete incumbent.
    has_best: bool,
    /// Pruning cap derived from the greedy schedule's value: any subtree
    /// whose lower bound reaches this can't contain the optimum. Kept
    /// slightly above the greedy value so the first optimal leaf is never
    /// pruned even on exact ties — the cap only prunes, it is never returned.
    prune_cap: f64,
    /// Search nodes visited.
    nodes: usize,
    /// Whether the earliest-finish scan bound is still in use. Starts `true`;
    /// flips to `false` when the adaptive probe concludes the search cannot
    /// finish within the node budget, after which the search continues in
    /// [`ScheduleProblem::branch_cheap`] with only the suffix-floor bound
    /// (see [`ScheduleProblem::solve_with`]).
    use_scan_bound: bool,
    /// Fraction of the enumeration space already covered (sum of the
    /// subtree weights of every pruned subtree and visited leaf). Drives the
    /// adaptive probe's completed-nodes projection.
    progress: f64,
    /// `(nodes, progress)` at the first adaptive probe. The projection is
    /// computed on the *residual* space past this baseline: the first few
    /// thousand nodes prune most of the high-weight subtrees near the root
    /// (the greedy cap disposes of an item's expensive options in one node
    /// each), so the raw `nodes / progress` ratio wildly underestimates how
    /// dense the remaining space is.
    probe_baseline: Option<(usize, f64)>,
    /// Consecutive probes whose projection exceeded the node budget; the
    /// scan bound is dropped on the second, so one noisy early estimate
    /// cannot end a search the bound would finish.
    hopeless_probes: u8,
    /// Whether the running search is the anytime entry point: a hopeless
    /// probe then unwinds to the best-first tier instead of continuing in
    /// the suffix-floor-only depth-first loop.
    anytime: bool,
    /// Best-first open list (reused allocation).
    heap: BinaryHeap<OpenNode>,
    /// Best-first path arena: `(parent arena index, option index)` per
    /// generated node (reused allocation). The option link is as wide as
    /// the option order's indices, so no window size can truncate it.
    arena: Vec<(u32, u32)>,
}

impl SolveScratch {
    /// Creates an empty scratch arena.
    pub fn new() -> Self {
        SolveScratch::default()
    }

    fn reset(&mut self, n: usize, prune_cap: f64, anytime: bool) {
        self.selected.clear();
        self.selected.resize(n, 0);
        self.best_selected.clear();
        self.best_selected.resize(n, 0);
        self.best_penalised = f64::INFINITY;
        self.has_best = false;
        self.prune_cap = prune_cap;
        self.nodes = 0;
        self.use_scan_bound = true;
        self.progress = 0.0;
        self.probe_baseline = None;
        self.hopeless_probes = 0;
        self.anytime = anytime;
        self.heap.clear();
        self.arena.clear();
    }
}

/// The scheduling problem: a window of events starting no earlier than
/// `start_us`.
///
/// # Examples
///
/// ```
/// use pes_ilp::{ScheduleItem, ScheduleOption, ScheduleProblem};
///
/// // Two events; the second has a tight deadline, so the first must pick its
/// // faster (more expensive) option even though a cheaper one exists.
/// let items = vec![
///     ScheduleItem {
///         release_us: 0,
///         deadline_us: 1_000,
///         options: vec![
///             ScheduleOption { choice: 0, duration_us: 900, cost: 1.0 },
///             ScheduleOption { choice: 1, duration_us: 400, cost: 3.0 },
///         ],
///     },
///     ScheduleItem {
///         release_us: 0,
///         deadline_us: 800,
///         options: vec![
///             ScheduleOption { choice: 0, duration_us: 400, cost: 1.0 },
///             ScheduleOption { choice: 1, duration_us: 200, cost: 3.0 },
///         ],
///     },
/// ];
/// let solution = ScheduleProblem::new(0, items).solve().unwrap();
/// assert_eq!(solution.violations, 0);
/// assert_eq!(solution.choices, vec![1, 0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleProblem {
    start_us: u64,
    items: Vec<ScheduleItem>,
    node_limit: usize,
    /// Cost-sorted option indices for every item, flattened; item `i`'s order
    /// lives at `order[order_offsets[i]..order_offsets[i + 1]]`. Computed
    /// once at construction so repeated solves skip the per-call sort.
    order: Vec<u32>,
    /// Offsets into `order`, one per item plus a trailing end offset.
    order_offsets: Vec<u32>,
    /// Fastest option duration per item: drives the earliest-finish chain of
    /// the admissible lower bound.
    min_duration: Vec<u64>,
    /// Cheapest option cost per item: the cost floor once an item's deadline
    /// is already unavoidably missed.
    min_cost: Vec<f64>,
    /// Option durations per item, sorted ascending, flattened.
    dur_sorted: Vec<u64>,
    /// `dur_cheapest[k]`: cheapest cost among the options of the same item
    /// that are at least as fast as `dur_sorted[k]` (prefix minimum), so
    /// "cheapest option fitting a budget" is one binary search.
    dur_cheapest: Vec<f64>,
    /// Offsets into `dur_sorted`/`dur_cheapest`, one per item plus an end.
    dur_offsets: Vec<u32>,
    /// `suffix_min_cost[i]`: plain cost floor of items `i..`, used as the
    /// lower bound's tail beyond [`BOUND_SCAN_LIMIT`].
    suffix_min_cost: Vec<f64>,
    /// `1 / branching factor` per item (after dominated-option elimination):
    /// the weight a child subtree contributes to the adaptive probe's
    /// enumeration-space progress estimate.
    inv_breadth: Vec<f64>,
    /// Relative incumbent-quality gap at which the best-first tier stops
    /// early (see [`ScheduleProblem::with_incumbent_gap`]); `0.0` disables
    /// the early stop.
    incumbent_gap: f64,
}

/// How many remaining items the per-node lower bound inspects in detail;
/// the tail beyond this contributes the precomputed suffix minimum cost.
/// Caps per-node bound work at `O(BOUND_SCAN_LIMIT · log m)` on deep
/// windows while retaining full pruning power near the search frontier,
/// where it matters. The bound costs a few binary searches per node —
/// several times the reference solver's O(1) lookup — which is why the
/// adaptive probe (see [`ScheduleProblem::solve_with`]) stops paying for it
/// once a budget-bound search provably cannot finish. The capped bound
/// still dominates the plain suffix-cost bound, so the search never
/// explores more nodes than the reference.
const BOUND_SCAN_LIMIT: usize = 6;

/// Cost penalty applied per missed deadline so that minimising the penalised
/// cost is lexicographic: first minimise violations, then energy.
const VIOLATION_PENALTY: f64 = 1.0e15;

/// The adaptive probe interval ceiling: every `clamp(budget / 64, 512,
/// 2048)` nodes the search projects its total size from the
/// enumeration-space progress so far and, when the projection exceeds the
/// node budget, stops paying for the earliest-finish scan bound (see
/// [`ScheduleProblem::solve_with`]). The interval scales with the budget
/// because the three probes a hopeless verdict needs (baseline + two
/// consecutive over-projections) bound the worst-case latency of a solve
/// that was never going to finish: under the wide-tier 60 k budget the
/// verdict lands within ~3 k nodes instead of ~6 k, which is what pulled
/// the hostile 12×17 anytime worst case down. Large budgets (the 200 k
/// narrow tier and up) keep the 2048 ceiling, so searches the bound *does*
/// finish (the PES 6×17 window completes in ~105 k nodes) see the same
/// stable estimate as before.
const ADAPT_PROBE_INTERVAL_MAX: usize = 2048;

/// The adaptive probe interval floor: tiny budgets still need enough nodes
/// between probes for the residual projection to mean anything.
const ADAPT_PROBE_INTERVAL_MIN: usize = 512;

/// Safety margin on the adaptive probe's projection: the scan bound is only
/// dropped when the projected total exceeds this multiple of the node
/// budget. The residual extrapolation overestimates searches whose pruning
/// density improves as incumbents tighten (a 10-event window observed to
/// finish at ~3.7 M nodes under a 5 M budget projects past 5 M mid-search),
/// and a false flip turns a completable search into a greedy fallback. The
/// hopeless capped windows this adaptation targets project at ≥ 4× their
/// budget, so the margin costs them nothing.
const ADAPT_PROJECTION_MARGIN: f64 = 2.0;

impl ScheduleProblem {
    /// Creates a problem whose first event may start at `start_us`.
    ///
    /// Construction precomputes the solver's caches (cost-sorted option
    /// order, per-item minimum durations/costs, duration-sorted
    /// prefix-minimum cost tables) in `O(n·m log m)` for `n` items of `m`
    /// options — negligible next to the search itself, and paid once per
    /// window rather than once per solve.
    pub fn new(start_us: u64, items: Vec<ScheduleItem>) -> Self {
        let mut problem = ScheduleProblem {
            start_us,
            items,
            node_limit: 5_000_000,
            order: Vec::new(),
            order_offsets: Vec::new(),
            min_duration: Vec::new(),
            min_cost: Vec::new(),
            dur_sorted: Vec::new(),
            dur_cheapest: Vec::new(),
            dur_offsets: Vec::new(),
            suffix_min_cost: Vec::new(),
            inv_breadth: Vec::new(),
            incumbent_gap: 0.0,
        };
        problem.rebuild_tables(None);
        problem
    }

    /// Re-poses this problem for a new window, reusing **every** internal
    /// allocation: the item slots (including their `options` vectors) and
    /// all solver cache tables. The node limit and incumbent gap are kept.
    ///
    /// Construction cost is what put `ScheduleProblem::new` on the Oracle's
    /// replay profile — a dozen table allocations per cache-miss solve, paid
    /// once per prediction round. The runtime's solve-memoisation ring now
    /// recycles its evicted slots through this method, so a steady replay
    /// allocates nothing per solve.
    pub fn rebuild(&mut self, start_us: u64, items: &[ScheduleItem]) {
        self.copy_items(start_us, items);
        self.rebuild_tables(None);
    }

    /// [`ScheduleProblem::rebuild`] without the per-item sorting: the caller
    /// supplies one pre-sorted [`OptionOrder`] per item (the PES runtime's
    /// ladder cache holds its 17-option rows sorted already), and the solver
    /// tables are built by walking those orders instead of re-sorting —
    /// which was most of a re-pose's cost. Bit-identical to
    /// [`ScheduleProblem::rebuild`] when the orders satisfy
    /// [`OptionOrder::is_valid_for`] (`debug_assert`ed here).
    ///
    /// # Panics
    ///
    /// Panics when `orders.len() != items.len()`.
    pub fn rebuild_sorted(
        &mut self,
        start_us: u64,
        items: &[ScheduleItem],
        orders: &[OptionOrder],
    ) {
        assert_eq!(items.len(), orders.len(), "one OptionOrder per window item");
        debug_assert!(
            items
                .iter()
                .zip(orders)
                .all(|(item, order)| order.is_valid_for(&item.options)),
            "orders must be stable sorts of the item options"
        );
        self.copy_items(start_us, items);
        self.rebuild_tables(Some(orders));
    }

    /// Copies a new window into the recycled item slots.
    fn copy_items(&mut self, start_us: u64, items: &[ScheduleItem]) {
        self.start_us = start_us;
        self.items.truncate(items.len());
        while self.items.len() < items.len() {
            self.items.push(ScheduleItem {
                release_us: 0,
                deadline_us: 0,
                options: Vec::new(),
            });
        }
        for (slot, item) in self.items.iter_mut().zip(items) {
            slot.release_us = item.release_us;
            slot.deadline_us = item.deadline_us;
            slot.options.clear();
            slot.options.extend_from_slice(&item.options);
        }
    }

    /// Recomputes the solver's cached tables from `self.items`, reusing the
    /// table allocations. Produces exactly the tables
    /// [`ScheduleProblem::new`] builds; with `orders` supplied the per-item
    /// sorts are replaced by walks of the given (identically tie-broken)
    /// permutations.
    // The comparator `expect` restates the same finite-cost invariant as
    // [`OptionOrder::from_options`].
    #[allow(clippy::expect_used)]
    fn rebuild_tables(&mut self, orders: Option<&[OptionOrder]>) {
        let n = self.items.len();
        let items = &self.items;

        // Cost-sorted option order per item: the first dive is greedy and
        // produces a good incumbent quickly. Dominated options — at least as
        // slow AND at least as expensive as an option earlier in cost order —
        // are dropped: such a branch can never strictly improve on the
        // earlier option's subtree (a later start can only raise future cost
        // and violations), so eliding it cannot change which incumbents the
        // search accepts.
        self.order.clear();
        self.order_offsets.clear();
        let mut scratch_idx: Vec<u32> = Vec::new();
        self.order_offsets.push(0);
        for (i, item) in items.iter().enumerate() {
            let by_cost: &[u32] = match orders {
                Some(orders) => &orders[i].by_cost,
                None => {
                    scratch_idx.clear();
                    scratch_idx.extend(0..item.options.len() as u32);
                    scratch_idx.sort_by(|&a, &b| {
                        item.options[a as usize]
                            .cost
                            .partial_cmp(&item.options[b as usize].cost)
                            .expect("costs are finite")
                    });
                    &scratch_idx
                }
            };
            let mut fastest_so_far = u64::MAX;
            for &idx in by_cost {
                let duration = item.options[idx as usize].duration_us;
                if duration < fastest_so_far {
                    fastest_so_far = duration;
                    self.order.push(idx);
                }
            }
            self.order_offsets.push(self.order.len() as u32);
        }

        // Per-item minimum duration and cost: the building blocks of the
        // admissible earliest-finish / cheapest-feasible lower bound.
        self.min_duration.clear();
        self.min_duration.extend(items.iter().map(|item| {
            item.options
                .iter()
                .map(|o| o.duration_us)
                .min()
                .unwrap_or(0)
        }));
        self.min_cost.clear();
        self.min_cost.extend(items.iter().map(|item| {
            item.options
                .iter()
                .map(|o| o.cost)
                .fold(f64::INFINITY, f64::min)
        }));

        // Duration-sorted options with a prefix-minimum cost, so "cheapest
        // option no slower than a budget" is a single binary search.
        self.dur_sorted.clear();
        self.dur_cheapest.clear();
        self.dur_offsets.clear();
        self.dur_offsets.push(0);
        let mut by_duration: Vec<(u64, f64)> = Vec::new();
        for (i, item) in items.iter().enumerate() {
            match orders {
                Some(orders) => {
                    let mut cheapest = f64::INFINITY;
                    for &idx in &orders[i].by_duration {
                        let opt = item.options[idx as usize];
                        cheapest = cheapest.min(opt.cost);
                        self.dur_sorted.push(opt.duration_us);
                        self.dur_cheapest.push(cheapest);
                    }
                }
                None => {
                    by_duration.clear();
                    by_duration.extend(item.options.iter().map(|o| (o.duration_us, o.cost)));
                    by_duration.sort_by_key(|&(duration, _)| duration);
                    let mut cheapest = f64::INFINITY;
                    for &(duration, cost) in &by_duration {
                        cheapest = cheapest.min(cost);
                        self.dur_sorted.push(duration);
                        self.dur_cheapest.push(cheapest);
                    }
                }
            }
            self.dur_offsets.push(self.dur_sorted.len() as u32);
        }

        self.suffix_min_cost.clear();
        self.suffix_min_cost.resize(n + 1, 0.0);
        for i in (0..n).rev() {
            self.suffix_min_cost[i] = self.suffix_min_cost[i + 1] + self.min_cost[i];
        }

        self.inv_breadth.clear();
        let order_offsets = &self.order_offsets;
        self.inv_breadth.extend((0..n).map(|i| {
            let breadth = (order_offsets[i + 1] - order_offsets[i]).max(1);
            1.0 / breadth as f64
        }));
    }

    /// The events in the window.
    pub fn items(&self) -> &[ScheduleItem] {
        &self.items
    }

    /// The window's start time in microseconds.
    pub fn start_us(&self) -> u64 {
        self.start_us
    }

    /// Caps the number of branch-and-bound nodes.
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.set_node_limit(limit);
        self
    }

    /// In-place form of [`ScheduleProblem::with_node_limit`], for recycled
    /// problems (see [`ScheduleProblem::rebuild`]).
    pub fn set_node_limit(&mut self, limit: usize) {
        self.node_limit = limit.max(1);
    }

    /// Sets the best-first tier's incumbent-quality early stop: the search
    /// ends as soon as the best open lower bound proves the incumbent within
    /// `gap` (relative) of the optimal cost *at the incumbent's violation
    /// count* — nodes that could still reduce violations keep the search
    /// alive, so the lexicographic contract is untouched. `0.0` (the
    /// default) disables the stop. Only [`SolveTier::Incumbent`] results are
    /// affected; exact-tier solves never see the gap.
    pub fn with_incumbent_gap(mut self, gap: f64) -> Self {
        self.set_incumbent_gap(gap);
        self
    }

    /// In-place form of [`ScheduleProblem::with_incumbent_gap`], for
    /// recycled problems.
    pub fn set_incumbent_gap(&mut self, gap: f64) {
        self.incumbent_gap = gap.max(0.0);
    }

    /// The configured node budget.
    pub fn node_limit(&self) -> usize {
        self.node_limit
    }

    /// The configured incumbent-quality gap (`0.0` = disabled).
    pub fn incumbent_gap(&self) -> f64 {
        self.incumbent_gap
    }

    /// Admissible lower bound on `(cost, violations)` of items `index..` when
    /// execution resumes at `cursor_us`.
    ///
    /// The bound walks the earliest-finish chain: each remaining item starts
    /// no earlier than `max(chain, release)` and the chain advances by the
    /// item's *fastest* option, so every actual schedule starts each item at
    /// or after the chain's start. The item then contributes the cheapest
    /// option fast enough to meet its deadline from that earliest start (one
    /// binary search in the duration-sorted prefix-minimum table); if even
    /// the fastest option misses, the miss is unavoidable and the item
    /// contributes a violation plus its global cheapest cost. Both
    /// relaxations under-approximate the true remaining objective, so
    /// pruning on this bound never changes the returned optimum.
    fn suffix_lower_bound(&self, index: usize, cursor_us: u64) -> (f64, usize) {
        let mut chain = cursor_us;
        let mut cost = 0.0;
        let mut violations = 0usize;
        let scan_end = (index + BOUND_SCAN_LIMIT).min(self.items.len());
        for (j, item) in self.items.iter().enumerate().take(scan_end).skip(index) {
            let start = chain.max(item.release_us);
            let budget = item.deadline_us.saturating_sub(start);
            if budget < self.min_duration[j] {
                violations += 1;
                cost += self.min_cost[j];
            } else {
                cost += self.cheapest_fitting(j, budget);
            }
            chain = start + self.min_duration[j];
        }
        // Items beyond the scan horizon contribute their plain cost floor —
        // still admissible, just cheaper to evaluate.
        (cost + self.suffix_min_cost[scan_end], violations)
    }

    /// Cheapest cost of an option of item `j` no slower than `budget`.
    /// Precondition: the item's fastest option fits (`budget >=
    /// min_duration[j]`). The slowest-option-fits common case (loose
    /// windows) answers with one compare instead of a binary search.
    #[inline]
    fn cheapest_fitting(&self, j: usize, budget: u64) -> f64 {
        let lo = self.dur_offsets[j] as usize;
        let hi = self.dur_offsets[j + 1] as usize;
        if self.dur_sorted[hi - 1] <= budget {
            return self.dur_cheapest[hi - 1];
        }
        let fitting = self.dur_sorted[lo..hi].partition_point(|&d| d <= budget);
        debug_assert!(fitting > 0, "caller checked the fastest option fits");
        self.dur_cheapest[lo + fitting - 1]
    }

    /// Whether the earliest-finish scan bound prunes a node whose penalised
    /// prefix value is `penalised` against `threshold` — the boolean form of
    /// [`ScheduleProblem::suffix_lower_bound`] the depth-first search uses.
    ///
    /// Identical decision, cheaper evaluation: after each scanned item the
    /// partial bound (scanned items so far at their cheapest-fitting costs,
    /// everything beyond at its plain cost floor) is itself an admissible
    /// lower bound that the full scan's value can only raise, so the scan
    /// stops as soon as the partial bound reaches the threshold — at the
    /// first unavoidable violation, usually. The last iteration's test is
    /// the exact expression the full bound would have compared, so a scan
    /// that runs to the end decides identically to the two-step form.
    #[inline]
    fn scan_bound_prunes(
        &self,
        index: usize,
        cursor_us: u64,
        penalised: f64,
        threshold: f64,
    ) -> bool {
        let mut chain = cursor_us;
        let mut cost = 0.0;
        let mut violations = 0usize;
        let scan_end = (index + BOUND_SCAN_LIMIT).min(self.items.len());
        if index == scan_end {
            return penalised + self.suffix_min_cost[scan_end] >= threshold;
        }
        for (j, item) in self.items.iter().enumerate().take(scan_end).skip(index) {
            let start = chain.max(item.release_us);
            let budget = item.deadline_us.saturating_sub(start);
            if budget < self.min_duration[j] {
                violations += 1;
                cost += self.min_cost[j];
            } else {
                cost += self.cheapest_fitting(j, budget);
            }
            chain = start + self.min_duration[j];
            if penalised
                + (cost + self.suffix_min_cost[j + 1])
                + violations as f64 * VIOLATION_PENALTY
                >= threshold
            {
                return true;
            }
        }
        false
    }

    /// Solves the window with the specialised branch and bound.
    ///
    /// The objective is lexicographic: minimise the number of missed
    /// deadlines first (the instance may be infeasible when a Type I event is
    /// present), then total cost.
    ///
    /// # Errors
    ///
    /// * [`IlpError::EmptyProblem`] when the window has no events or an event
    ///   has no options.
    /// * [`IlpError::NodeLimit`] when the search exceeds the node limit.
    pub fn solve(&self) -> Result<ScheduleSolution, IlpError> {
        let mut scratch = SolveScratch::new();
        let mut solution = ScheduleSolution::default();
        self.solve_with(&mut scratch, &mut solution)?;
        Ok(solution)
    }

    /// Allocation-free variant of [`ScheduleProblem::solve`]: the search
    /// state lives in the caller's `scratch` and the result overwrites
    /// `solution`, reusing both buffers' capacity across calls. This is the
    /// entry point the PES runtime uses on its per-decision hot path.
    ///
    /// # Errors
    ///
    /// Same as [`ScheduleProblem::solve`]. On error `solution` is left
    /// cleared.
    pub fn solve_with(
        &self,
        scratch: &mut SolveScratch,
        solution: &mut ScheduleSolution,
    ) -> Result<(), IlpError> {
        Self::clear_solution(solution);
        if self.items.is_empty() || self.items.iter().any(|i| i.options.is_empty()) {
            return Err(IlpError::EmptyProblem);
        }
        // The greedy schedule's value caps the search from the first node: a
        // subtree whose lower bound reaches it can't beat the optimum (which
        // is at most greedy). The margin keeps the cap strictly above the
        // greedy value so an exactly-greedy-valued optimum is never pruned.
        let greedy = self.greedy_value();
        let prune_cap = greedy + (greedy.abs() * 1e-12).max(1e-6);
        scratch.reset(self.items.len(), prune_cap, false);
        self.branch(scratch, 0, self.start_us, 0.0, 0, 1.0)
            .map_err(|_| IlpError::NodeLimit(self.node_limit))?;
        debug_assert!(scratch.has_best, "at least one full assignment is explored");
        self.emit_solution(scratch, solution);
        Ok(())
    }

    /// The anytime entry point: exact when the node budget suffices, best
    /// incumbent otherwise — never the greedy cliff.
    ///
    /// Runs the same depth-first search as [`ScheduleProblem::solve_with`];
    /// a search that completes returns [`SolveTier::Exact`] with the
    /// identical (reference-bit-identical) schedule. When the adaptive probe
    /// concludes the node budget is provably insufficient, the search
    /// switches to the best-first incumbent tier (priority queue ordered by
    /// the admissible lower bound) and spends the remaining budget improving
    /// the incumbent; when the budget runs out mid-search the incumbent
    /// found so far stands. Either way the returned schedule's lexicographic
    /// `(violations, cost)` objective is never worse than the greedy
    /// schedule's — the incumbent is seeded with greedy before the
    /// best-first tier runs, and a depth-first incumbent only survives if it
    /// beats it.
    ///
    /// # Errors
    ///
    /// * [`IlpError::EmptyProblem`] when the window has no events or an
    ///   event has no options. Unlike [`ScheduleProblem::solve_with`], node
    ///   budget exhaustion is not an error.
    pub fn solve_anytime_with(
        &self,
        scratch: &mut SolveScratch,
        solution: &mut ScheduleSolution,
    ) -> Result<SolveTier, IlpError> {
        Self::clear_solution(solution);
        if self.items.is_empty() || self.items.iter().any(|i| i.options.is_empty()) {
            return Err(IlpError::EmptyProblem);
        }
        let greedy = self.greedy_value();
        let prune_cap = greedy + (greedy.abs() * 1e-12).max(1e-6);
        scratch.reset(self.items.len(), prune_cap, true);
        let tier = match self.branch(scratch, 0, self.start_us, 0.0, 0, 1.0) {
            Ok(()) => SolveTier::Exact,
            Err(stop) => {
                // Seed the incumbent with the greedy schedule unless the
                // depth-first phase already found something strictly better.
                // (A depth-first incumbent can exceed the greedy value by up
                // to the prune-cap margin, so the comparison is explicit.)
                if !scratch.has_best || scratch.best_penalised > greedy {
                    let seeded = self.greedy_selection_into(&mut scratch.best_selected);
                    debug_assert_eq!(seeded.to_bits(), greedy.to_bits());
                    scratch.best_penalised = greedy;
                    scratch.has_best = true;
                }
                if stop == SearchStop::Hopeless {
                    self.best_first(scratch);
                }
                SolveTier::Incumbent
            }
        };
        debug_assert!(scratch.has_best, "an incumbent always exists");
        self.emit_solution(scratch, solution);
        Ok(tier)
    }

    /// Clears a caller-supplied solution buffer, keeping its capacity.
    fn clear_solution(solution: &mut ScheduleSolution) {
        solution.selected.clear();
        solution.choices.clear();
        solution.finish_us.clear();
        solution.total_cost = 0.0;
        solution.violations = 0;
        solution.nodes_explored = 0;
    }

    /// Writes the incumbent held in `scratch` into `solution`.
    fn emit_solution(&self, scratch: &SolveScratch, solution: &mut ScheduleSolution) {
        solution.violations = (scratch.best_penalised / VIOLATION_PENALTY).round() as usize;
        let mut cursor = self.start_us;
        for (item, &sel) in self.items.iter().zip(&scratch.best_selected) {
            let opt = item.options[sel];
            let start = cursor.max(item.release_us);
            cursor = start + opt.duration_us;
            solution.selected.push(sel);
            solution.choices.push(opt.choice);
            solution.finish_us.push(cursor);
            solution.total_cost += opt.cost;
        }
        solution.nodes_explored = scratch.nodes;
    }

    /// The budget-scaled adaptive probe interval (see
    /// [`ADAPT_PROBE_INTERVAL_MAX`]).
    #[inline]
    fn probe_interval(&self) -> usize {
        (self.node_limit / 64).clamp(ADAPT_PROBE_INTERVAL_MIN, ADAPT_PROBE_INTERVAL_MAX)
    }

    /// Adaptive probe, evaluated every [`ScheduleProblem::probe_interval`] nodes while
    /// the scan bound is on: projects the search's total node count and
    /// drops the scan bound when the projection exceeds the node budget.
    ///
    /// The projection is a *residual* extrapolation. The first probe
    /// snapshots `(nodes, progress)`; the greedy-capped search has by then
    /// disposed of the high-weight subtrees near the root (an item's
    /// too-expensive options each die in one node carrying 1/17th of the
    /// space), so the space remaining past the baseline is where the real
    /// work lives. Later probes extrapolate the node density observed on
    /// that residual space. Two consecutive over-budget projections are
    /// required, so one noisy estimate cannot end a search the bound would
    /// finish.
    fn adapt_probe(&self, scratch: &mut SolveScratch) {
        match scratch.probe_baseline {
            None => scratch.probe_baseline = Some((scratch.nodes, scratch.progress)),
            Some((base_nodes, base_progress)) => {
                let residual_span = 1.0 - base_progress;
                let covered = if residual_span > 0.0 {
                    (scratch.progress - base_progress) / residual_span
                } else {
                    1.0
                };
                let projected = if covered > 0.0 {
                    base_nodes as f64 + (scratch.nodes - base_nodes) as f64 / covered
                } else {
                    f64::INFINITY
                };
                if projected > self.node_limit as f64 * ADAPT_PROJECTION_MARGIN {
                    scratch.hopeless_probes += 1;
                    if scratch.hopeless_probes >= 2 {
                        scratch.use_scan_bound = false;
                    }
                } else {
                    scratch.hopeless_probes = 0;
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn branch(
        &self,
        scratch: &mut SolveScratch,
        index: usize,
        cursor_us: u64,
        cost: f64,
        violations: usize,
        weight: f64,
    ) -> Result<(), SearchStop> {
        if !scratch.use_scan_bound {
            // The adaptive probe concluded the search cannot finish within
            // the node budget. An anytime search unwinds the whole stack
            // here and hands the remaining budget to the best-first tier;
            // the plain capped search keeps enumerating in the lean
            // suffix-floor-only loop (pruning no longer changes its outcome,
            // the budget-exhausted greedy fallback). Siblings of the frames
            // still on the stack land here immediately.
            if scratch.anytime {
                return Err(SearchStop::Hopeless);
            }
            return self.branch_cheap_entry(scratch, index, cursor_us, cost, violations);
        }
        scratch.nodes += 1;
        if scratch.nodes > self.node_limit {
            return Err(SearchStop::Budget);
        }
        if scratch.nodes.is_multiple_of(self.probe_interval()) {
            self.adapt_probe(scratch);
        }
        let penalised = cost + violations as f64 * VIOLATION_PENALTY;
        let threshold = if scratch.has_best {
            (scratch.best_penalised - 1e-9).min(scratch.prune_cap)
        } else {
            scratch.prune_cap
        };
        // Earliest-finish scan bound: taking the cheapest deadline-respecting
        // remaining options in the best case, and counting only the future
        // misses that are already unavoidable, can this branch still beat
        // the incumbent (or, before one exists, the greedy cap)? The bound
        // is admissible, so the returned optimum is identical to the
        // unpruned search's.
        if self.scan_bound_prunes(index, cursor_us, penalised, threshold) {
            scratch.progress += weight;
            return Ok(());
        }
        if index == self.items.len() {
            scratch.progress += weight;
            if !scratch.has_best || penalised < scratch.best_penalised - 1e-9 {
                scratch.best_selected.copy_from_slice(&scratch.selected);
                scratch.best_penalised = penalised;
                scratch.has_best = true;
            }
            return Ok(());
        }
        let item = &self.items[index];
        let child_weight = weight * self.inv_breadth[index];
        for k in self.order_offsets[index] as usize..self.order_offsets[index + 1] as usize {
            let opt_idx = self.order[k] as usize;
            let opt = item.options[opt_idx];
            let start = cursor_us.max(item.release_us);
            let finish = start + opt.duration_us;
            let missed = finish > item.deadline_us;
            scratch.selected[index] = opt_idx;
            self.branch(
                scratch,
                index + 1,
                finish,
                cost + opt.cost,
                violations + usize::from(missed),
                child_weight,
            )?;
        }
        Ok(())
    }

    /// Entry point of the post-adaptation search: handles the node the
    /// search was standing on when the scan bound was dropped (or a sibling
    /// of a frame still on the stack) exactly as the recursive loop would —
    /// count, bound, leaf — then continues in [`ScheduleProblem::branch_cheap`].
    fn branch_cheap_entry(
        &self,
        scratch: &mut SolveScratch,
        index: usize,
        cursor_us: u64,
        cost: f64,
        violations: usize,
    ) -> Result<(), SearchStop> {
        scratch.nodes += 1;
        if scratch.nodes > self.node_limit {
            return Err(SearchStop::Budget);
        }
        let penalised = cost + violations as f64 * VIOLATION_PENALTY;
        let threshold = if scratch.has_best {
            (scratch.best_penalised - 1e-9).min(scratch.prune_cap)
        } else {
            scratch.prune_cap
        };
        if penalised + self.suffix_min_cost[index] >= threshold {
            return Ok(());
        }
        if index == self.items.len() {
            if penalised < scratch.best_penalised - 1e-9 {
                scratch.best_selected.copy_from_slice(&scratch.selected);
                scratch.best_penalised = penalised;
                scratch.has_best = true;
            }
            return Ok(());
        }
        self.branch_cheap(scratch, index, cursor_us, cost, violations)
    }

    /// The post-adaptation search loop: identical enumeration, node
    /// accounting and incumbent chain, but only the suffix-floor bound — the
    /// same bound the reference solver uses — with each child's count, bound
    /// test and leaf handling inlined into the parent loop. A pruned child
    /// costs a handful of scalar operations instead of a function call, so a
    /// budget-bound search burns its remaining nodes faster than
    /// `solve_reference` burns its own. Because the suffix-floor bound is
    /// admissible too, a search that completes down here still returns the
    /// exact reference schedule.
    ///
    /// Precondition: the node at `index` is already counted, bound-checked
    /// and known not to be a leaf.
    fn branch_cheap(
        &self,
        scratch: &mut SolveScratch,
        index: usize,
        cursor_us: u64,
        cost: f64,
        violations: usize,
    ) -> Result<(), SearchStop> {
        let item = &self.items[index];
        let start = cursor_us.max(item.release_us);
        let child_is_leaf = index + 1 == self.items.len();
        for k in self.order_offsets[index] as usize..self.order_offsets[index + 1] as usize {
            let opt_idx = self.order[k] as usize;
            let opt = item.options[opt_idx];
            let finish = start + opt.duration_us;
            let child_cost = cost + opt.cost;
            let child_violations = violations + usize::from(finish > item.deadline_us);
            scratch.nodes += 1;
            if scratch.nodes > self.node_limit {
                return Err(SearchStop::Budget);
            }
            let penalised = child_cost + child_violations as f64 * VIOLATION_PENALTY;
            let threshold = if scratch.has_best {
                (scratch.best_penalised - 1e-9).min(scratch.prune_cap)
            } else {
                scratch.prune_cap
            };
            if penalised + self.suffix_min_cost[index + 1] >= threshold {
                continue;
            }
            scratch.selected[index] = opt_idx;
            if child_is_leaf {
                if penalised < scratch.best_penalised - 1e-9 {
                    scratch.best_selected.copy_from_slice(&scratch.selected);
                    scratch.best_penalised = penalised;
                    scratch.has_best = true;
                }
                continue;
            }
            self.branch_cheap(scratch, index + 1, finish, child_cost, child_violations)?;
        }
        Ok(())
    }

    /// The one greedy (EBS-like) schedule walk: every event independently
    /// picks the cheapest option meeting its deadline given the time already
    /// committed, falling back to the fastest option when none fits.
    /// Invokes `pick(item index, selected option index, option, finish_us)`
    /// per item and returns the penalised value. [`ScheduleProblem::solve`]'s
    /// pruning cap, the anytime incumbent seeding and
    /// [`ScheduleProblem::solve_greedy`] all build on this single routine so
    /// their tie-breaking can never drift apart.
    // The `expect`s restate constructor invariants: costs are finite (the
    // comparator is total) and every item has at least one option.
    #[allow(clippy::expect_used)]
    fn greedy_walk(&self, mut pick: impl FnMut(usize, usize, ScheduleOption, u64)) -> f64 {
        let mut cursor = self.start_us;
        let mut cost = 0.0;
        let mut violations = 0usize;
        for (i, item) in self.items.iter().enumerate() {
            let start = cursor.max(item.release_us);
            let feasible = item
                .options
                .iter()
                .enumerate()
                .filter(|(_, o)| start + o.duration_us <= item.deadline_us)
                .min_by(|a, b| a.1.cost.partial_cmp(&b.1.cost).expect("finite"));
            let (sel, opt) = match feasible {
                Some((j, o)) => (j, *o),
                None => {
                    let (j, o) = item
                        .options
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, o)| o.duration_us)
                        .expect("non-empty options");
                    (j, *o)
                }
            };
            cursor = start + opt.duration_us;
            if cursor > item.deadline_us {
                violations += 1;
            }
            cost += opt.cost;
            pick(i, sel, opt, cursor);
        }
        cost + violations as f64 * VIOLATION_PENALTY
    }

    /// The penalised value of the greedy schedule, computed without
    /// allocating: it seeds the branch-and-bound's pruning cap. Only the
    /// value is kept — never the greedy selection — so the incumbent chain
    /// (and therefore the returned schedule) matches the reference search
    /// exactly.
    fn greedy_value(&self) -> f64 {
        self.greedy_walk(|_, _, _, _| {})
    }

    /// The greedy schedule's per-item selections, written into `out`
    /// (allocation-free), returning the penalised value.
    fn greedy_selection_into(&self, out: &mut [usize]) -> f64 {
        self.greedy_walk(|i, sel, _, _| out[i] = sel)
    }

    /// The best-first incumbent tier of the anytime solver.
    ///
    /// Classic best-first branch and bound: an open list (binary heap)
    /// ordered by the admissible earliest-finish lower bound, popping the
    /// most promising partial assignment and expanding its children in the
    /// cached cost order. Children whose bound cannot beat the incumbent are
    /// dropped at generation; complete assignments tighten the incumbent
    /// immediately (they never enter the heap). Paths are stored as
    /// `(parent, option)` links in a flat arena, so a node costs 8 bytes of
    /// arena plus one heap entry and the whole tier allocates nothing after
    /// the first hard window of a given size.
    ///
    /// Every child generation counts against the same node budget the
    /// depth-first tier metered, so a capped anytime solve does bounded
    /// total work. The search ends when the budget is spent, the heap runs
    /// dry, the best open bound can no longer beat the incumbent (at which
    /// point the incumbent is in fact optimal — still reported as
    /// [`SolveTier::Incumbent`], since tie-breaking may differ from the
    /// reference search's), or — with
    /// [`ScheduleProblem::with_incumbent_gap`] configured — the best open
    /// bound proves the incumbent within ε of the optimal cost at its
    /// violation count.
    ///
    /// Precondition: `scratch.has_best` (the caller seeds the incumbent with
    /// the greedy schedule), and `scratch.selected`/`best_selected` are
    /// sized to the window.
    fn best_first(&self, scratch: &mut SolveScratch) {
        let n = self.items.len();
        scratch.heap.clear();
        scratch.arena.clear();
        scratch.arena.push((u32::MAX, 0));
        let root_bound = {
            let (cost, violations) = self.suffix_lower_bound(0, self.start_us);
            cost + violations as f64 * VIOLATION_PENALTY
        };
        if root_bound >= scratch.best_penalised - 1e-9 {
            return;
        }
        scratch.heap.push(OpenNode {
            bound: root_bound,
            seq: 0,
            arena: 0,
            index: 0,
            cursor_us: self.start_us,
            cost: 0.0,
            violations: 0,
        });
        let mut seq = 1u32;
        while let Some(node) = scratch.heap.pop() {
            // The best open bound cannot beat the incumbent: every other
            // open node is at least as bad, so the incumbent is optimal.
            if node.bound >= scratch.best_penalised - 1e-9 {
                break;
            }
            // ε incumbent-quality stop: when no open node can still reduce
            // the violation count (the popped bound already carries at least
            // the incumbent's violations — and every other open node is at
            // least as bad) and the best open bound is within the configured
            // relative cost gap of the incumbent, the incumbent is provably
            // within ε of optimal; burning the rest of the budget buys at
            // most that sliver. The incumbent only ever improves from its
            // greedy seed, so stopping early can never violate the
            // never-worse-than-greedy contract.
            if self.incumbent_gap > 0.0 {
                let inc_violations = (scratch.best_penalised / VIOLATION_PENALTY).round();
                let bound_violations = (node.bound / VIOLATION_PENALTY).round();
                if bound_violations >= inc_violations {
                    let inc_cost = scratch.best_penalised - inc_violations * VIOLATION_PENALTY;
                    let bound_cost = node.bound - bound_violations * VIOLATION_PENALTY;
                    if inc_cost - bound_cost <= self.incumbent_gap * inc_cost.abs().max(1.0) {
                        break;
                    }
                }
            }
            let index = node.index as usize;
            debug_assert!(index < n, "complete assignments never enter the heap");
            let item = &self.items[index];
            let start = node.cursor_us.max(item.release_us);
            let child_is_leaf = index + 1 == n;
            for k in self.order_offsets[index] as usize..self.order_offsets[index + 1] as usize {
                scratch.nodes += 1;
                if scratch.nodes > self.node_limit {
                    return;
                }
                let opt_idx = self.order[k] as usize;
                let opt = item.options[opt_idx];
                let finish = start + opt.duration_us;
                let child_cost = node.cost + opt.cost;
                let child_violations = node.violations + u32::from(finish > item.deadline_us);
                let penalised = child_cost + child_violations as f64 * VIOLATION_PENALTY;
                if child_is_leaf {
                    if penalised < scratch.best_penalised - 1e-9 {
                        scratch.best_penalised = penalised;
                        scratch.selected[index] = opt_idx;
                        Self::reconstruct_path(
                            &scratch.arena,
                            node.arena,
                            index,
                            &mut scratch.selected,
                        );
                        scratch.best_selected.copy_from_slice(&scratch.selected);
                    }
                    continue;
                }
                let (suffix_cost, unavoidable) = self.suffix_lower_bound(index + 1, finish);
                let bound = penalised + suffix_cost + unavoidable as f64 * VIOLATION_PENALTY;
                if bound >= scratch.best_penalised - 1e-9 {
                    continue;
                }
                scratch.arena.push((node.arena, opt_idx as u32));
                scratch.heap.push(OpenNode {
                    bound,
                    seq,
                    arena: (scratch.arena.len() - 1) as u32,
                    index: (index + 1) as u32,
                    cursor_us: finish,
                    cost: child_cost,
                    violations: child_violations,
                });
                seq = seq.wrapping_add(1);
            }
        }
    }

    /// Fills `selected[0..depth]` from the arena chain ending at `arena_idx`
    /// (the node standing at item `depth`).
    fn reconstruct_path(
        arena: &[(u32, u32)],
        mut arena_idx: u32,
        depth: usize,
        selected: &mut [usize],
    ) {
        for i in (0..depth).rev() {
            let (parent, opt_idx) = arena[arena_idx as usize];
            selected[i] = opt_idx as usize;
            arena_idx = parent;
        }
        debug_assert_eq!(arena_idx, 0, "paths terminate at the root");
    }

    /// The pre-optimisation branch-and-bound, retained verbatim as a
    /// validation reference: per-call option sorting, suffix-cost-only
    /// pruning and an incumbent clone per improvement. Property tests assert
    /// [`ScheduleProblem::solve`] returns identical schedules; benches
    /// measure the speedup against it.
    ///
    /// # Errors
    ///
    /// Same as [`ScheduleProblem::solve`].
    // The `expect`s restate solver invariants: finite costs make the
    // comparator total, and branch_reference always explores at least one
    // full assignment before returning.
    #[allow(clippy::expect_used)]
    pub fn solve_reference(&self) -> Result<ScheduleSolution, IlpError> {
        if self.items.is_empty() || self.items.iter().any(|i| i.options.is_empty()) {
            return Err(IlpError::EmptyProblem);
        }
        let mut order: Vec<Vec<usize>> = Vec::with_capacity(self.items.len());
        for item in &self.items {
            let mut idx: Vec<usize> = (0..item.options.len()).collect();
            idx.sort_by(|&a, &b| {
                item.options[a]
                    .cost
                    .partial_cmp(&item.options[b].cost)
                    .expect("costs are finite")
            });
            order.push(idx);
        }
        let mut suffix_min_cost = vec![0.0; self.items.len() + 1];
        for i in (0..self.items.len()).rev() {
            let min_cost = self.items[i]
                .options
                .iter()
                .map(|o| o.cost)
                .fold(f64::INFINITY, f64::min);
            suffix_min_cost[i] = suffix_min_cost[i + 1] + min_cost;
        }
        let mut state = ReferenceState {
            selected: vec![0; self.items.len()],
            best: None,
            nodes: 0,
        };
        self.branch_reference(
            &mut state,
            0,
            self.start_us,
            0.0,
            0,
            &order,
            &suffix_min_cost,
        )?;
        let (selected, penalised) = state
            .best
            .expect("at least one full assignment is explored");
        let violations = (penalised / VIOLATION_PENALTY).round() as usize;
        let mut finish_us = Vec::with_capacity(self.items.len());
        let mut cursor = self.start_us;
        let mut total_cost = 0.0;
        let mut choices = Vec::with_capacity(self.items.len());
        for (item, &sel) in self.items.iter().zip(&selected) {
            let opt = item.options[sel];
            let start = cursor.max(item.release_us);
            cursor = start + opt.duration_us;
            finish_us.push(cursor);
            total_cost += opt.cost;
            choices.push(opt.choice);
        }
        Ok(ScheduleSolution {
            selected,
            choices,
            finish_us,
            total_cost,
            violations,
            nodes_explored: state.nodes,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn branch_reference(
        &self,
        state: &mut ReferenceState,
        index: usize,
        cursor_us: u64,
        cost: f64,
        violations: usize,
        order: &[Vec<usize>],
        suffix_min_cost: &[f64],
    ) -> Result<(), IlpError> {
        state.nodes += 1;
        if state.nodes > self.node_limit {
            return Err(IlpError::NodeLimit(self.node_limit));
        }
        let penalised = cost + violations as f64 * VIOLATION_PENALTY;
        if let Some((_, best)) = &state.best {
            if penalised + suffix_min_cost[index] >= *best - 1e-9 {
                return Ok(());
            }
        }
        if index == self.items.len() {
            let better = match &state.best {
                Some((_, best)) => penalised < *best - 1e-9,
                None => true,
            };
            if better {
                state.best = Some((state.selected.clone(), penalised));
            }
            return Ok(());
        }
        let item = &self.items[index];
        for &opt_idx in &order[index] {
            let opt = item.options[opt_idx];
            let start = cursor_us.max(item.release_us);
            let finish = start + opt.duration_us;
            let missed = finish > item.deadline_us;
            state.selected[index] = opt_idx;
            self.branch_reference(
                state,
                index + 1,
                finish,
                cost + opt.cost,
                violations + usize::from(missed),
                order,
                suffix_min_cost,
            )?;
        }
        Ok(())
    }

    /// A greedy, EBS-like schedule: every event independently picks the
    /// cheapest option that meets its deadline given the time already
    /// committed to preceding events, falling back to the fastest option when
    /// none fits. Used as a comparison point and as a quick incumbent.
    pub fn solve_greedy(&self) -> Result<ScheduleSolution, IlpError> {
        if self.items.is_empty() || self.items.iter().any(|i| i.options.is_empty()) {
            return Err(IlpError::EmptyProblem);
        }
        let mut selected = Vec::new();
        let mut choices = Vec::new();
        let mut finish_us = Vec::new();
        let mut total_cost = 0.0;
        let penalised = self.greedy_walk(|_, sel, opt, finish| {
            selected.push(sel);
            choices.push(opt.choice);
            finish_us.push(finish);
            total_cost += opt.cost;
        });
        Ok(ScheduleSolution {
            selected,
            choices,
            finish_us,
            total_cost,
            violations: (penalised / VIOLATION_PENALTY).round() as usize,
            nodes_explored: self.items.len(),
        })
    }

    /// Encodes this problem as a generic 0/1 ILP (variables `τ(i, j)` with the
    /// Eqn. 2 selection constraints and Eqn. 4 cumulative-deadline
    /// constraints) for the specialised-vs-generic ablation.
    ///
    /// The encoding assumes back-to-back execution from `start_us` (release
    /// times earlier than the running completion time, which holds for the
    /// windows PES builds), matching the paper's formulation.
    pub fn to_generic_ilp(&self) -> IlpProblem {
        let var = |item: usize, opt: usize, items: &[ScheduleItem]| -> usize {
            items[..item].iter().map(|i| i.options.len()).sum::<usize>() + opt
        };
        let mut objective = LinearExpr::new();
        for (i, item) in self.items.iter().enumerate() {
            for (j, opt) in item.options.iter().enumerate() {
                objective.add_term(var(i, j, &self.items), opt.cost);
            }
        }
        let mut problem = IlpProblem::minimize(objective);
        for (i, item) in self.items.iter().enumerate() {
            problem.add_constraint(exactly_one(
                (0..item.options.len()).map(|j| var(i, j, &self.items)),
            ));
            // Cumulative deadline: sum of chosen durations of events 0..=i
            // must not exceed deadline(i) - start.
            let mut expr = LinearExpr::new();
            for (k, prior) in self.items.iter().enumerate().take(i + 1) {
                for (j, opt) in prior.options.iter().enumerate() {
                    expr.add_term(var(k, j, &self.items), opt.duration_us as f64);
                }
            }
            let budget = item.deadline_us.saturating_sub(self.start_us) as f64;
            problem.add_constraint(Constraint::new(expr, Comparison::LessEq, budget));
        }
        problem
    }
}

struct ReferenceState {
    selected: Vec<usize>,
    best: Option<(Vec<usize>, f64)>,
    nodes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opt(choice: usize, duration_us: u64, cost: f64) -> ScheduleOption {
        ScheduleOption {
            choice,
            duration_us,
            cost,
        }
    }

    /// The Fig. 2 situation in miniature: a slack-rich first event followed by
    /// a heavy second event with a tight deadline. A reactive (greedy) policy
    /// lets E1 run slowly and then cannot save E2; the global solver shortens
    /// E1 to create room.
    fn fig2_like_items() -> Vec<ScheduleItem> {
        vec![
            ScheduleItem {
                release_us: 0,
                deadline_us: 3_000_000, // a load with a 3 s target
                options: vec![opt(0, 2_500_000, 10.0), opt(1, 1_000_000, 25.0)],
            },
            ScheduleItem {
                release_us: 500_000,
                deadline_us: 1_800_000, // heavy tap triggered at 1.5 s, 300 ms target
                options: vec![opt(0, 1_500_000, 8.0), opt(1, 700_000, 20.0)],
            },
        ]
    }

    #[test]
    fn global_solver_coordinates_across_events() {
        let problem = ScheduleProblem::new(0, fig2_like_items());
        let optimal = problem.solve().unwrap();
        let greedy = problem.solve_greedy().unwrap();
        // Greedy keeps E1 cheap (it meets its own deadline) and then E2
        // cannot finish by 1.8 s even on its fast option: 2.5 s + 0.7 s.
        assert_eq!(greedy.violations, 1);
        // The global schedule speeds up E1 so E2 meets its deadline.
        assert_eq!(optimal.violations, 0);
        assert_eq!(optimal.choices[0], 1);
        assert!(optimal.finish_us[1] <= 1_800_000);
        // Even with E1 sped up, only E2's fast option fits before 1.8 s.
        assert_eq!(optimal.choices[1], 1);
        assert!(
            optimal.total_cost > greedy.total_cost,
            "meeting every deadline costs more energy than the greedy schedule spends"
        );
    }

    #[test]
    fn cheapest_options_win_when_deadlines_are_loose() {
        let items = vec![
            ScheduleItem {
                release_us: 0,
                deadline_us: 10_000_000,
                options: vec![opt(0, 100_000, 1.0), opt(1, 50_000, 9.0)],
            },
            ScheduleItem {
                release_us: 0,
                deadline_us: 10_000_000,
                options: vec![opt(0, 100_000, 2.0), opt(1, 50_000, 7.0)],
            },
        ];
        let sol = ScheduleProblem::new(0, items).solve().unwrap();
        assert_eq!(sol.choices, vec![0, 0]);
        assert!((sol.total_cost - 3.0).abs() < 1e-9);
        assert_eq!(sol.violations, 0);
    }

    #[test]
    fn infeasible_windows_minimise_violations_first() {
        // Both events cannot possibly meet their deadlines; the solver should
        // report exactly the unavoidable number of violations rather than
        // failing.
        let items = vec![
            ScheduleItem {
                release_us: 0,
                deadline_us: 10,
                options: vec![opt(0, 1_000, 1.0)],
            },
            ScheduleItem {
                release_us: 0,
                deadline_us: 2_000,
                options: vec![opt(0, 500, 1.0), opt(1, 3_000, 0.5)],
            },
        ];
        let sol = ScheduleProblem::new(0, items).solve().unwrap();
        assert_eq!(sol.violations, 1);
        // The second event still meets its deadline (1000 + 500 <= 2000),
        // which requires picking its faster, more expensive option.
        assert_eq!(sol.choices[1], 0);
    }

    #[test]
    fn release_times_delay_execution() {
        let items = vec![ScheduleItem {
            release_us: 5_000,
            deadline_us: 7_000,
            options: vec![opt(0, 1_000, 1.0)],
        }];
        let sol = ScheduleProblem::new(0, items).solve().unwrap();
        assert_eq!(sol.finish_us, vec![6_000]);
        assert_eq!(sol.violations, 0);
    }

    #[test]
    fn empty_problems_are_rejected() {
        assert_eq!(
            ScheduleProblem::new(0, vec![]).solve().unwrap_err(),
            IlpError::EmptyProblem
        );
        let no_options = vec![ScheduleItem {
            release_us: 0,
            deadline_us: 10,
            options: vec![],
        }];
        assert_eq!(
            ScheduleProblem::new(0, no_options).solve().unwrap_err(),
            IlpError::EmptyProblem
        );
    }

    #[test]
    fn node_limit_is_enforced() {
        let items: Vec<ScheduleItem> = (0..12)
            .map(|i| ScheduleItem {
                release_us: 0,
                deadline_us: 1_000_000,
                options: (0..8)
                    .map(|j| opt(j, 100 + j as u64, (i + j) as f64))
                    .collect(),
            })
            .collect();
        let problem = ScheduleProblem::new(0, items).with_node_limit(5);
        assert!(matches!(problem.solve(), Err(IlpError::NodeLimit(5))));
        assert!(matches!(
            problem.solve_reference(),
            Err(IlpError::NodeLimit(5))
        ));
    }

    #[test]
    fn specialised_and_generic_solvers_agree() {
        let problem = ScheduleProblem::new(0, fig2_like_items());
        let specialised = problem.solve().unwrap();
        let generic = problem.to_generic_ilp().solve().unwrap();
        // Decode the generic assignment back into per-event choices.
        let mut offset = 0;
        let mut generic_cost = 0.0;
        for item in problem.items() {
            let picked: Vec<usize> = (0..item.options.len())
                .filter(|j| generic.assignment[offset + j])
                .collect();
            assert_eq!(picked.len(), 1, "exactly one option per event");
            generic_cost += item.options[picked[0]].cost;
            offset += item.options.len();
        }
        assert!((generic_cost - specialised.total_cost).abs() < 1e-6);
    }

    #[test]
    fn optimised_solver_matches_the_reference_on_fig2() {
        let problem = ScheduleProblem::new(0, fig2_like_items());
        let optimised = problem.solve().unwrap();
        let reference = problem.solve_reference().unwrap();
        assert_eq!(optimised.selected, reference.selected);
        assert_eq!(optimised.choices, reference.choices);
        assert_eq!(optimised.finish_us, reference.finish_us);
        assert_eq!(optimised.violations, reference.violations);
        assert!((optimised.total_cost - reference.total_cost).abs() < 1e-12);
        assert!(
            optimised.nodes_explored <= reference.nodes_explored,
            "the optimised search must not explore more nodes"
        );
    }

    #[test]
    fn scratch_reuse_returns_the_same_solution() {
        let problem = ScheduleProblem::new(0, fig2_like_items());
        let fresh = problem.solve().unwrap();
        let mut scratch = SolveScratch::new();
        let mut reused = ScheduleSolution::default();
        for _ in 0..3 {
            problem.solve_with(&mut scratch, &mut reused).unwrap();
            assert_eq!(reused, fresh);
        }
    }

    #[test]
    fn greedy_never_beats_the_optimal_cost_on_feasible_instances() {
        let items = vec![
            ScheduleItem {
                release_us: 0,
                deadline_us: 400_000,
                options: vec![opt(0, 300_000, 2.0), opt(1, 120_000, 6.0)],
            },
            ScheduleItem {
                release_us: 100_000,
                deadline_us: 600_000,
                options: vec![opt(0, 250_000, 2.0), opt(1, 100_000, 5.0)],
            },
            ScheduleItem {
                release_us: 200_000,
                deadline_us: 700_000,
                options: vec![opt(0, 200_000, 1.5), opt(1, 90_000, 4.0)],
            },
        ];
        let problem = ScheduleProblem::new(0, items);
        let optimal = problem.solve().unwrap();
        let greedy = problem.solve_greedy().unwrap();
        assert!(optimal.violations <= greedy.violations);
        if optimal.violations == greedy.violations {
            assert!(optimal.total_cost <= greedy.total_cost + 1e-9);
        }
    }

    /// A PES-shaped hard window: `n` events with 17-option convex cost
    /// curves and enough slack structure that exact solves need millions of
    /// nodes.
    fn hard_window(n: u64) -> Vec<ScheduleItem> {
        (0..n)
            .map(|i| ScheduleItem {
                release_us: i * 60_000,
                deadline_us: (i + 1) * 230_000,
                options: (0..17)
                    .map(|j| ScheduleOption {
                        choice: j,
                        duration_us: 260_000 - (j as u64) * 9_000,
                        cost: 1.0 + 0.3 * (j as f64).powf(1.6),
                    })
                    .collect(),
            })
            .collect()
    }

    /// Lexicographic `(violations, cost)` comparison: `a` no worse than `b`.
    fn no_worse(a: &ScheduleSolution, b: &ScheduleSolution) -> bool {
        a.violations < b.violations
            || (a.violations == b.violations && a.total_cost <= b.total_cost + 1e-9)
    }

    #[test]
    fn anytime_exact_tier_matches_the_depth_first_solver() {
        let problem = ScheduleProblem::new(0, fig2_like_items());
        let exact = problem.solve().unwrap();
        let mut scratch = SolveScratch::new();
        let mut solution = ScheduleSolution::default();
        let tier = problem
            .solve_anytime_with(&mut scratch, &mut solution)
            .unwrap();
        assert_eq!(tier, SolveTier::Exact);
        assert_eq!(solution, exact);
    }

    #[test]
    fn anytime_capped_solve_returns_an_incumbent_no_worse_than_greedy() {
        for budget in [1usize, 10, 100, 5_000, 30_000] {
            let problem = ScheduleProblem::new(0, hard_window(12)).with_node_limit(budget);
            let greedy = problem.solve_greedy().unwrap();
            let mut scratch = SolveScratch::new();
            let mut solution = ScheduleSolution::default();
            let tier = problem
                .solve_anytime_with(&mut scratch, &mut solution)
                .unwrap();
            assert_eq!(solution.selected.len(), 12);
            assert!(
                no_worse(&solution, &greedy),
                "budget {budget}: anytime ({}, {}) worse than greedy ({}, {})",
                solution.violations,
                solution.total_cost,
                greedy.violations,
                greedy.total_cost
            );
            if budget >= 30_000 {
                assert_eq!(tier, SolveTier::Incumbent);
            }
        }
    }

    /// A chain of Fig. 2-style (slack-rich, then tight) event pairs whose
    /// slowest options overlap the next pair: greedy lets every slack-rich
    /// event crawl and then misses every tight deadline, while a global
    /// schedule meets all of them. Exact search needs tens of millions of
    /// nodes on this window; the best-first tier finds (and proves) the
    /// 0-violation optimum within a few thousand.
    fn greedy_hostile_chain(pairs: u64) -> Vec<ScheduleItem> {
        let mut items = Vec::new();
        for k in 0..pairs {
            let base = k * 3_000_000;
            items.push(ScheduleItem {
                release_us: base,
                deadline_us: base + 3_000_000,
                options: (0..17)
                    .map(|j| ScheduleOption {
                        choice: j,
                        duration_us: 2_500_000 - j as u64 * 90_000,
                        cost: 10.0 + 1.5 * (j as f64).powf(1.3),
                    })
                    .collect(),
            });
            items.push(ScheduleItem {
                release_us: base + 500_000,
                deadline_us: base + 1_800_000,
                options: (0..17)
                    .map(|j| ScheduleOption {
                        choice: j,
                        duration_us: 1_500_000 - j as u64 * 50_000,
                        cost: 8.0 + 1.2 * (j as f64).powf(1.3),
                    })
                    .collect(),
            });
        }
        items
    }

    #[test]
    fn anytime_incumbent_beats_the_greedy_cliff_on_hostile_windows() {
        // 12 events x 17 options; the depth-first search cannot finish this
        // window within 20M nodes, so the old capped solver would cliff-drop
        // to greedy (6 violations). The anytime tier must do strictly
        // better under the PES runtime's 200k budget.
        let problem = ScheduleProblem::new(0, greedy_hostile_chain(6)).with_node_limit(200_000);
        let greedy = problem.solve_greedy().unwrap();
        assert_eq!(greedy.violations, 6, "greedy misses every tight deadline");
        let mut scratch = SolveScratch::new();
        let mut solution = ScheduleSolution::default();
        let tier = problem
            .solve_anytime_with(&mut scratch, &mut solution)
            .unwrap();
        assert_eq!(tier, SolveTier::Incumbent);
        assert_eq!(
            solution.violations, 0,
            "the incumbent tier meets every deadline"
        );
        assert!(no_worse(&solution, &greedy));
    }

    #[test]
    fn anytime_incumbent_is_deterministic_across_repeat_solves() {
        let problem = ScheduleProblem::new(0, hard_window(10)).with_node_limit(20_000);
        let mut scratch = SolveScratch::new();
        let mut first = ScheduleSolution::default();
        let tier_a = problem
            .solve_anytime_with(&mut scratch, &mut first)
            .unwrap();
        for _ in 0..3 {
            let mut again = ScheduleSolution::default();
            let tier_b = problem
                .solve_anytime_with(&mut scratch, &mut again)
                .unwrap();
            assert_eq!(tier_a, tier_b);
            assert_eq!(first, again);
        }
    }

    /// Stable sorted orders per item, via the canonical builder.
    fn orders_for(items: &[ScheduleItem]) -> Vec<OptionOrder> {
        items
            .iter()
            .map(|item| OptionOrder::from_options(&item.options))
            .collect()
    }

    #[test]
    fn rebuild_sorted_is_bit_identical_to_the_sorting_rebuild() {
        for items in [fig2_like_items(), hard_window(7), greedy_hostile_chain(3)] {
            let orders = orders_for(&items);
            assert!(orders
                .iter()
                .zip(&items)
                .all(|(o, i)| o.is_valid_for(&i.options)));
            let mut sorting = ScheduleProblem::new(0, Vec::new()).with_node_limit(60_000);
            sorting.rebuild(0, &items);
            let mut sorted = ScheduleProblem::new(0, Vec::new()).with_node_limit(60_000);
            sorted.rebuild_sorted(0, &items, &orders);
            // Every solver table (the derived PartialEq spans them all) and
            // therefore every solve is identical.
            assert_eq!(sorting, sorted);
            let mut scratch = SolveScratch::new();
            let (mut a, mut b) = (ScheduleSolution::default(), ScheduleSolution::default());
            let tier_a = sorting.solve_anytime_with(&mut scratch, &mut a).unwrap();
            let tier_b = sorted.solve_anytime_with(&mut scratch, &mut b).unwrap();
            assert_eq!(tier_a, tier_b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn incumbent_gap_stop_keeps_the_quality_contract_and_saves_nodes() {
        // The hard-window timing with a near-flat cost curve: the search is
        // as large as ever (the probe flips it to the incumbent tier), but
        // every feasible schedule costs within a fraction of a percent of
        // the admissible bound — so the ε stop can certify the incumbent
        // almost immediately, where the gap-less burn grinds through
        // near-tie incumbents until the budget dies.
        let items: Vec<ScheduleItem> = (0..12)
            .map(|i| ScheduleItem {
                release_us: i * 60_000,
                deadline_us: (i + 1) * 230_000,
                options: (0..17)
                    .map(|j| ScheduleOption {
                        choice: j,
                        duration_us: 260_000 - (j as u64) * 9_000,
                        cost: 5.0 + j as f64 * 1e-3,
                    })
                    .collect(),
            })
            .collect();
        let full = ScheduleProblem::new(0, items.clone()).with_node_limit(60_000);
        let greedy = full.solve_greedy().unwrap();
        let mut scratch = SolveScratch::new();
        let mut burn = ScheduleSolution::default();
        assert_eq!(
            full.solve_anytime_with(&mut scratch, &mut burn).unwrap(),
            SolveTier::Incumbent
        );
        let eager = ScheduleProblem::new(0, items)
            .with_node_limit(60_000)
            .with_incumbent_gap(0.01);
        let mut early = ScheduleSolution::default();
        assert_eq!(
            eager.solve_anytime_with(&mut scratch, &mut early).unwrap(),
            SolveTier::Incumbent
        );
        assert!(no_worse(&early, &greedy));
        // The ε stop only fires when no open node can still reduce the
        // violation count, so the stopped incumbent ties the full burn's.
        assert_eq!(early.violations, burn.violations);
        assert!(
            early.nodes_explored < burn.nodes_explored,
            "ε stop should end the incumbent burn early ({} vs {})",
            early.nodes_explored,
            burn.nodes_explored
        );
        assert!(
            early.total_cost <= burn.total_cost * 1.01 + 1e-9,
            "ε-stopped incumbent within the configured gap ({} vs {})",
            early.total_cost,
            burn.total_cost
        );
    }

    #[test]
    fn anytime_rejects_empty_windows() {
        let mut scratch = SolveScratch::new();
        let mut solution = ScheduleSolution::default();
        assert_eq!(
            ScheduleProblem::new(0, vec![])
                .solve_anytime_with(&mut scratch, &mut solution)
                .unwrap_err(),
            IlpError::EmptyProblem
        );
    }

    #[test]
    fn finish_times_are_monotone_and_consistent() {
        let problem = ScheduleProblem::new(50, fig2_like_items());
        let sol = problem.solve().unwrap();
        assert!(sol.finish_us.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(sol.finish_us.len(), problem.items().len());
        assert_eq!(sol.selected.len(), problem.items().len());
    }
}
