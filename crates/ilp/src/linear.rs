//! Linear expressions and constraints over 0/1 variables.

use std::fmt;

/// The comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Comparison {
    /// `lhs <= rhs`
    LessEq,
    /// `lhs >= rhs`
    GreaterEq,
    /// `lhs == rhs`
    Equal,
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Comparison::LessEq => "<=",
            Comparison::GreaterEq => ">=",
            Comparison::Equal => "==",
        };
        f.write_str(s)
    }
}

/// A sparse linear expression `Σ coeff_k · x_{var_k}` over 0/1 variables.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinearExpr {
    terms: Vec<(usize, f64)>,
}

impl LinearExpr {
    /// An empty (zero) expression.
    pub fn new() -> Self {
        LinearExpr { terms: Vec::new() }
    }

    /// Adds `coeff · x_var` to the expression, merging duplicate variables.
    pub fn add_term(&mut self, var: usize, coeff: f64) -> &mut Self {
        if let Some(existing) = self.terms.iter_mut().find(|(v, _)| *v == var) {
            existing.1 += coeff;
        } else {
            self.terms.push((var, coeff));
        }
        self
    }

    /// Builds an expression from `(variable, coefficient)` pairs.
    pub fn from_terms<I: IntoIterator<Item = (usize, f64)>>(terms: I) -> Self {
        let mut expr = LinearExpr::new();
        for (v, c) in terms {
            expr.add_term(v, c);
        }
        expr
    }

    /// The `(variable, coefficient)` terms.
    pub fn terms(&self) -> &[(usize, f64)] {
        &self.terms
    }

    /// The number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the expression has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The largest variable index referenced, if any.
    pub fn max_var(&self) -> Option<usize> {
        self.terms.iter().map(|(v, _)| *v).max()
    }

    /// Evaluates the expression under a full assignment.
    pub fn evaluate(&self, assignment: &[bool]) -> f64 {
        self.terms
            .iter()
            .map(|(v, c)| {
                if assignment.get(*v).copied().unwrap_or(false) {
                    *c
                } else {
                    0.0
                }
            })
            .sum()
    }

    /// The minimum and maximum value the expression can still reach given a
    /// partial assignment (`None` entries are undecided).
    pub fn bounds(&self, partial: &[Option<bool>]) -> (f64, f64) {
        let mut lo = 0.0;
        let mut hi = 0.0;
        for (v, c) in &self.terms {
            match partial.get(*v).copied().flatten() {
                Some(true) => {
                    lo += c;
                    hi += c;
                }
                Some(false) => {}
                None => {
                    if *c >= 0.0 {
                        hi += c;
                    } else {
                        lo += c;
                    }
                }
            }
        }
        (lo, hi)
    }
}

/// A linear constraint `expr (<=|>=|==) rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// The left-hand-side expression.
    pub expr: LinearExpr,
    /// The comparison operator.
    pub cmp: Comparison,
    /// The right-hand-side constant.
    pub rhs: f64,
}

impl Constraint {
    /// Creates a constraint.
    pub fn new(expr: LinearExpr, cmp: Comparison, rhs: f64) -> Self {
        Constraint { expr, cmp, rhs }
    }

    /// Whether a full assignment satisfies the constraint (with a small
    /// floating-point tolerance).
    pub fn is_satisfied(&self, assignment: &[bool]) -> bool {
        let value = self.expr.evaluate(assignment);
        match self.cmp {
            Comparison::LessEq => value <= self.rhs + 1e-9,
            Comparison::GreaterEq => value >= self.rhs - 1e-9,
            Comparison::Equal => (value - self.rhs).abs() <= 1e-9,
        }
    }

    /// Whether the constraint can still be satisfied under a partial
    /// assignment (used for pruning during branch and bound).
    pub fn is_satisfiable(&self, partial: &[Option<bool>]) -> bool {
        let (lo, hi) = self.expr.bounds(partial);
        match self.cmp {
            Comparison::LessEq => lo <= self.rhs + 1e-9,
            Comparison::GreaterEq => hi >= self.rhs - 1e-9,
            Comparison::Equal => lo <= self.rhs + 1e-9 && hi >= self.rhs - 1e-9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_term_merges_duplicates() {
        let mut e = LinearExpr::new();
        e.add_term(0, 1.0).add_term(1, 2.0).add_term(0, 3.0);
        assert_eq!(e.len(), 2);
        assert_eq!(e.terms()[0], (0, 4.0));
        assert_eq!(e.max_var(), Some(1));
        assert!(!e.is_empty());
        assert!(LinearExpr::new().is_empty());
        assert_eq!(LinearExpr::new().max_var(), None);
    }

    #[test]
    fn evaluate_under_assignment() {
        let e = LinearExpr::from_terms([(0, 2.0), (2, 5.0)]);
        assert_eq!(e.evaluate(&[true, true, false]), 2.0);
        assert_eq!(e.evaluate(&[true, false, true]), 7.0);
        // Missing variables count as false.
        assert_eq!(e.evaluate(&[true]), 2.0);
    }

    #[test]
    fn bounds_respect_partial_assignment_and_sign() {
        let e = LinearExpr::from_terms([(0, 3.0), (1, -2.0), (2, 1.0)]);
        let partial = [Some(true), None, None];
        let (lo, hi) = e.bounds(&partial);
        assert_eq!(lo, 1.0); // 3 + (-2)
        assert_eq!(hi, 4.0); // 3 + 1
    }

    #[test]
    fn constraint_satisfaction() {
        let c = Constraint::new(
            LinearExpr::from_terms([(0, 1.0), (1, 1.0)]),
            Comparison::Equal,
            1.0,
        );
        assert!(c.is_satisfied(&[true, false]));
        assert!(!c.is_satisfied(&[true, true]));
        assert!(!c.is_satisfied(&[false, false]));

        let le = Constraint::new(LinearExpr::from_terms([(0, 5.0)]), Comparison::LessEq, 4.0);
        assert!(le.is_satisfied(&[false]));
        assert!(!le.is_satisfied(&[true]));

        let ge = Constraint::new(
            LinearExpr::from_terms([(0, 5.0)]),
            Comparison::GreaterEq,
            4.0,
        );
        assert!(ge.is_satisfied(&[true]));
        assert!(!ge.is_satisfied(&[false]));
    }

    #[test]
    fn satisfiability_prunes_impossible_branches() {
        // x0 + x1 == 2 with x0 fixed to false can never hold.
        let c = Constraint::new(
            LinearExpr::from_terms([(0, 1.0), (1, 1.0)]),
            Comparison::Equal,
            2.0,
        );
        assert!(!c.is_satisfiable(&[Some(false), None]));
        assert!(c.is_satisfiable(&[Some(true), None]));
        // x0*10 <= 5 with x0 fixed to true is impossible.
        let le = Constraint::new(LinearExpr::from_terms([(0, 10.0)]), Comparison::LessEq, 5.0);
        assert!(!le.is_satisfiable(&[Some(true)]));
        assert!(le.is_satisfiable(&[None]));
    }

    #[test]
    fn comparison_display() {
        assert_eq!(Comparison::LessEq.to_string(), "<=");
        assert_eq!(Comparison::GreaterEq.to_string(), ">=");
        assert_eq!(Comparison::Equal.to_string(), "==");
    }
}
