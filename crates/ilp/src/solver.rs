//! A generic 0/1 integer-linear-programming solver based on depth-first
//! branch and bound with constraint-propagation pruning.
//!
//! The paper implements its own solver customised to the PES formulation
//! instead of using a third-party package (Sec. 5.5); this module is the
//! *generic* counterpart used as the ablation baseline, while
//! [`crate::schedule`] contains the specialised solver PES actually uses.

use crate::error::IlpError;
use crate::linear::{Comparison, Constraint, LinearExpr};

/// A 0/1 ILP: minimise `objective` subject to `constraints`.
///
/// # Examples
///
/// ```
/// use pes_ilp::{Comparison, Constraint, IlpProblem, LinearExpr};
///
/// // Pick exactly one of two options; the second is cheaper.
/// let mut problem = IlpProblem::minimize(LinearExpr::from_terms([(0, 5.0), (1, 2.0)]));
/// problem.add_constraint(Constraint::new(
///     LinearExpr::from_terms([(0, 1.0), (1, 1.0)]),
///     Comparison::Equal,
///     1.0,
/// ));
/// let solution = problem.solve().unwrap();
/// assert_eq!(solution.assignment, vec![false, true]);
/// assert!((solution.objective - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IlpProblem {
    objective: LinearExpr,
    constraints: Vec<Constraint>,
    num_vars: usize,
    node_limit: usize,
}

/// A solution to an [`IlpProblem`].
#[derive(Debug, Clone, PartialEq)]
pub struct IlpSolution {
    /// The value of every 0/1 variable.
    pub assignment: Vec<bool>,
    /// The objective value of the assignment.
    pub objective: f64,
    /// Number of branch-and-bound nodes explored.
    pub nodes_explored: usize,
}

impl IlpProblem {
    /// Creates a minimisation problem with the given objective.
    pub fn minimize(objective: LinearExpr) -> Self {
        let num_vars = objective.max_var().map(|v| v + 1).unwrap_or(0);
        IlpProblem {
            objective,
            constraints: Vec::new(),
            num_vars,
            node_limit: 2_000_000,
        }
    }

    /// Adds a constraint, growing the variable count if needed.
    pub fn add_constraint(&mut self, constraint: Constraint) -> &mut Self {
        if let Some(max_var) = constraint.expr.max_var() {
            self.num_vars = self.num_vars.max(max_var + 1);
        }
        self.constraints.push(constraint);
        self
    }

    /// The number of 0/1 variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Caps the number of branch-and-bound nodes explored before giving up.
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.node_limit = limit.max(1);
        self
    }

    /// Solves the problem to optimality by branch and bound.
    ///
    /// # Errors
    ///
    /// * [`IlpError::Infeasible`] when no assignment satisfies all
    ///   constraints.
    /// * [`IlpError::NodeLimit`] when the search exceeds the node limit
    ///   before proving optimality.
    pub fn solve(&self) -> Result<IlpSolution, IlpError> {
        let mut state = SearchState {
            partial: vec![None; self.num_vars],
            best: None,
            nodes: 0,
        };
        self.branch(&mut state, 0, 0.0)?;
        match state.best {
            Some((assignment, objective)) => Ok(IlpSolution {
                assignment,
                objective,
                nodes_explored: state.nodes,
            }),
            None => Err(IlpError::Infeasible),
        }
    }

    fn branch(
        &self,
        state: &mut SearchState,
        var: usize,
        partial_objective: f64,
    ) -> Result<(), IlpError> {
        state.nodes += 1;
        if state.nodes > self.node_limit {
            return Err(IlpError::NodeLimit(self.node_limit));
        }
        // Prune: any constraint already unsatisfiable?
        if self
            .constraints
            .iter()
            .any(|c| !c.is_satisfiable(&state.partial))
        {
            return Ok(());
        }
        // Bound: the best this subtree can do is the current objective plus
        // the most negative remaining contribution.
        let (obj_lo, _) = self.objective.bounds(&state.partial);
        if let Some((_, best_obj)) = &state.best {
            if obj_lo >= *best_obj - 1e-12 {
                return Ok(());
            }
        }
        if var == self.num_vars {
            let assignment: Vec<bool> = state.partial.iter().map(|v| v.unwrap_or(false)).collect();
            if self.constraints.iter().all(|c| c.is_satisfied(&assignment)) {
                let objective = self.objective.evaluate(&assignment);
                let better = match &state.best {
                    Some((_, best)) => objective < *best - 1e-12,
                    None => true,
                };
                if better {
                    state.best = Some((assignment, objective));
                }
            }
            return Ok(());
        }
        // Branch on the variable, trying the cheaper direction first.
        let coeff = self
            .objective
            .terms()
            .iter()
            .find(|(v, _)| *v == var)
            .map(|(_, c)| *c)
            .unwrap_or(0.0);
        let order = if coeff >= 0.0 {
            [false, true]
        } else {
            [true, false]
        };
        for value in order {
            state.partial[var] = Some(value);
            let delta = if value { coeff } else { 0.0 };
            self.branch(state, var + 1, partial_objective + delta)?;
        }
        state.partial[var] = None;
        let _ = partial_objective;
        Ok(())
    }
}

struct SearchState {
    partial: Vec<Option<bool>>,
    best: Option<(Vec<bool>, f64)>,
    nodes: usize,
}

/// Convenience constructor for the "exactly one of these variables" constraint
/// (Eqn. 2 of the paper).
pub fn exactly_one(vars: impl IntoIterator<Item = usize>) -> Constraint {
    Constraint::new(
        LinearExpr::from_terms(vars.into_iter().map(|v| (v, 1.0))),
        Comparison::Equal,
        1.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_minimisation_sets_positive_coefficients_to_zero() {
        let problem = IlpProblem::minimize(LinearExpr::from_terms([(0, 3.0), (1, -2.0), (2, 1.0)]));
        let sol = problem.solve().unwrap();
        assert_eq!(sol.assignment, vec![false, true, false]);
        assert!((sol.objective + 2.0).abs() < 1e-9);
    }

    #[test]
    fn exactly_one_picks_the_cheapest_option() {
        let mut problem =
            IlpProblem::minimize(LinearExpr::from_terms([(0, 9.0), (1, 4.0), (2, 7.0)]));
        problem.add_constraint(exactly_one([0, 1, 2]));
        let sol = problem.solve().unwrap();
        assert_eq!(sol.assignment, vec![false, true, false]);
        assert!((sol.objective - 4.0).abs() < 1e-9);
    }

    #[test]
    fn knapsack_style_constraint() {
        // Minimise cost while covering at least 10 units of value.
        // items: (cost, value): a=(5, 6), b=(4, 5), c=(3, 5), d=(10, 12)
        let mut problem = IlpProblem::minimize(LinearExpr::from_terms([
            (0, 5.0),
            (1, 4.0),
            (2, 3.0),
            (3, 10.0),
        ]));
        problem.add_constraint(Constraint::new(
            LinearExpr::from_terms([(0, 6.0), (1, 5.0), (2, 5.0), (3, 12.0)]),
            Comparison::GreaterEq,
            10.0,
        ));
        let sol = problem.solve().unwrap();
        // b + c covers exactly 10 for cost 7.
        assert_eq!(sol.assignment, vec![false, true, true, false]);
        assert!((sol.objective - 7.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_problems_are_reported() {
        let mut problem = IlpProblem::minimize(LinearExpr::from_terms([(0, 1.0), (1, 1.0)]));
        problem.add_constraint(Constraint::new(
            LinearExpr::from_terms([(0, 1.0), (1, 1.0)]),
            Comparison::GreaterEq,
            3.0,
        ));
        assert_eq!(problem.solve().unwrap_err(), IlpError::Infeasible);
    }

    #[test]
    fn node_limit_is_enforced() {
        // A 20-variable unconstrained problem explores more than 3 nodes.
        let objective = LinearExpr::from_terms((0..20).map(|v| (v, 1.0)));
        let problem = IlpProblem::minimize(objective).with_node_limit(3);
        assert!(matches!(problem.solve(), Err(IlpError::NodeLimit(3))));
    }

    #[test]
    fn equality_constraints_interact_with_objective() {
        // Two events, two configs each. Event 0 options: vars 0 (cost 10) and
        // 1 (cost 2); event 1 options: vars 2 (cost 3) and 3 (cost 8).
        // A coupling constraint forbids picking both cheap options
        // (pretend they would overrun a shared deadline).
        let mut problem = IlpProblem::minimize(LinearExpr::from_terms([
            (0, 10.0),
            (1, 2.0),
            (2, 3.0),
            (3, 8.0),
        ]));
        problem.add_constraint(exactly_one([0, 1]));
        problem.add_constraint(exactly_one([2, 3]));
        problem.add_constraint(Constraint::new(
            LinearExpr::from_terms([(1, 1.0), (2, 1.0)]),
            Comparison::LessEq,
            1.0,
        ));
        let sol = problem.solve().unwrap();
        // Best legal combination: cheap option for event 0 (2.0) and the
        // expensive one for event 1 (8.0) = 10, vs 10 + 3 = 13.
        assert_eq!(sol.assignment, vec![false, true, false, true]);
        assert!((sol.objective - 10.0).abs() < 1e-9);
    }

    #[test]
    fn problem_accessors() {
        let mut problem = IlpProblem::minimize(LinearExpr::from_terms([(4, 1.0)]));
        assert_eq!(problem.num_vars(), 5);
        problem.add_constraint(exactly_one([0, 6]));
        assert_eq!(problem.num_vars(), 7);
        assert_eq!(problem.num_constraints(), 1);
    }
}
