//! Error type for the ILP solvers.

use std::error::Error;
use std::fmt;

/// Errors produced by the `pes-ilp` crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum IlpError {
    /// No assignment satisfies all constraints.
    Infeasible,
    /// The branch-and-bound search exceeded its node limit.
    NodeLimit(usize),
    /// The problem has no items / options to choose from.
    EmptyProblem,
}

impl fmt::Display for IlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IlpError::Infeasible => write!(f, "the problem has no feasible assignment"),
            IlpError::NodeLimit(limit) => {
                write!(f, "search exceeded the node limit of {limit} nodes")
            }
            IlpError::EmptyProblem => write!(f, "the problem contains no schedulable items"),
        }
    }
}

impl Error for IlpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(IlpError::Infeasible.to_string().contains("feasible"));
        assert!(IlpError::NodeLimit(7).to_string().contains('7'));
        assert!(IlpError::EmptyProblem
            .to_string()
            .contains("no schedulable"));
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<IlpError>();
    }
}
