//! # pes-ilp — integer linear programming for proactive event scheduling
//!
//! PES formulates the assignment of ACMP configurations to a window of
//! outstanding + predicted events as a constrained optimisation problem
//! (Eqn. 2–5 of Feng & Zhu, ISCA 2019) and solves it with a solver customised
//! to that formulation rather than a third-party package (Sec. 5.5).
//!
//! This crate provides both:
//!
//! * [`ScheduleProblem`] — the specialised solver PES uses at runtime: exact
//!   branch and bound over per-event configuration choices with deadline
//!   propagation and a lexicographic (violations, then cost) objective, plus
//!   a greedy reference policy and an encoder into the generic ILP form,
//! * [`IlpProblem`] — a generic 0/1 ILP branch-and-bound solver used as the
//!   ablation baseline for the "specialised vs generic" design decision.
//!
//! The crate is dependency-free: times are `u64` microseconds and costs are
//! `f64` (microjoules in the PES use).
//!
//! # Examples
//!
//! ```
//! use pes_ilp::{ScheduleItem, ScheduleOption, ScheduleProblem};
//!
//! let window = vec![
//!     ScheduleItem {
//!         release_us: 0,
//!         deadline_us: 500_000,
//!         options: vec![
//!             ScheduleOption { choice: 0, duration_us: 400_000, cost: 2.0 },
//!             ScheduleOption { choice: 1, duration_us: 150_000, cost: 5.0 },
//!         ],
//!     },
//!     ScheduleItem {
//!         release_us: 200_000,
//!         deadline_us: 700_000,
//!         options: vec![
//!             ScheduleOption { choice: 0, duration_us: 300_000, cost: 2.0 },
//!             ScheduleOption { choice: 1, duration_us: 120_000, cost: 4.5 },
//!         ],
//!     },
//! ];
//! let solution = ScheduleProblem::new(0, window).solve()?;
//! assert_eq!(solution.violations, 0);
//! # Ok::<(), pes_ilp::IlpError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod error;
pub mod linear;
pub mod schedule;
pub mod solver;

pub use error::IlpError;
pub use linear::{Comparison, Constraint, LinearExpr};
pub use schedule::{
    OptionOrder, ScheduleItem, ScheduleOption, ScheduleProblem, ScheduleSolution, SolveEntry,
    SolveScratch, SolveTier,
};
pub use solver::{exactly_one, IlpProblem, IlpSolution};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IlpProblem>();
        assert_send_sync::<ScheduleProblem>();
        assert_send_sync::<ScheduleSolution>();
        assert_send_sync::<IlpError>();
    }

    #[test]
    fn schedule_windows_of_paper_scale_solve_quickly() {
        // PES windows contain a handful of outstanding events plus roughly
        // five predicted events over 17 configurations; make sure such an
        // instance solves within a modest node budget.
        let items: Vec<ScheduleItem> = (0..8)
            .map(|i| ScheduleItem {
                release_us: i * 400_000,
                deadline_us: (i + 1) * 400_000 + 300_000,
                options: (0..17)
                    .map(|j| ScheduleOption {
                        choice: j,
                        duration_us: 350_000 - (j as u64) * 15_000,
                        cost: 1.0 + j as f64 * 0.7,
                    })
                    .collect(),
            })
            .collect();
        let solution = ScheduleProblem::new(0, items)
            .with_node_limit(200_000)
            .solve()
            .expect("solves within the node limit");
        assert_eq!(solution.violations, 0);
    }
}
