//! Ablation benchmarks for the design decisions called out in DESIGN.md:
//! the specialised scheduler solver vs the generic 0/1 ILP encoding, and
//! DOM (LNES) masking vs pure statistical prediction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pes_ilp::{ScheduleItem, ScheduleOption, ScheduleProblem};
use pes_predictor::{LearnerConfig, SessionState, Trainer, TrainingConfig};
use pes_workload::{AppCatalog, TraceGenerator, EVAL_SEED_BASE};

fn window() -> ScheduleProblem {
    let items: Vec<ScheduleItem> = (0..4)
        .map(|i| ScheduleItem {
            release_us: i * 250_000,
            deadline_us: (i + 1) * 250_000 + 300_000,
            options: (0..8)
                .map(|j| ScheduleOption {
                    choice: j,
                    duration_us: 240_000u64.saturating_sub(j as u64 * 25_000),
                    cost: 1.0 + j as f64,
                })
                .collect(),
        })
        .collect();
    ScheduleProblem::new(0, items)
}

fn specialised_vs_generic_ilp(c: &mut Criterion) {
    let problem = window();
    let mut group = c.benchmark_group("ilp_specialised_vs_generic");
    group.sample_size(20);
    group.bench_function("specialised branch-and-bound", |b| {
        b.iter(|| black_box(problem.solve().unwrap()))
    });
    group.bench_function("greedy (EBS-like) reference", |b| {
        b.iter(|| black_box(problem.solve_greedy().unwrap()))
    });
    let generic = problem.to_generic_ilp();
    group.bench_function("generic 0/1 ILP encoding", |b| {
        b.iter(|| black_box(generic.solve().unwrap()))
    });
    group.finish();
}

fn lnes_masking(c: &mut Criterion) {
    let catalog = AppCatalog::paper_suite();
    let trainer = Trainer::with_config(TrainingConfig {
        traces_per_app: 2,
        epochs: 10,
        ..Default::default()
    });
    let with_dom = trainer.train_learner(&catalog, LearnerConfig::paper_defaults());
    let without_dom =
        trainer.train_learner(&catalog, LearnerConfig::paper_defaults().with_lnes(false));
    let app = catalog.find("ebay").unwrap();
    let page = app.build_page();
    let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE);
    let mut state = SessionState::new(page.tree.clone());
    for ev in trace.events().iter().take(5) {
        state.observe(ev);
    }
    let mut group = c.benchmark_group("prediction_with_and_without_dom");
    group.sample_size(30);
    group.bench_function("with LNES masking", |b| {
        b.iter(|| black_box(with_dom.predict_next(black_box(&mut state))))
    });
    group.bench_function("without LNES masking", |b| {
        b.iter(|| black_box(without_dom.predict_next(black_box(&mut state))))
    });
    group.finish();
}

criterion_group!(ablations, specialised_vs_generic_ilp, lnes_masking);
criterion_main!(ablations);
