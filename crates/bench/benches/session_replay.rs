//! End-to-end replay-throughput benchmarks: the cost of one figure-suite
//! fan-out unit (one `(application, trace, scheduler)` session replay, as
//! driven by `pes_sim::experiments`), one full headline-comparison row (all
//! five policies over one trace), one prediction round, and the scenario
//! artifacts (page + trace) themselves.
//!
//! The units replay the shared immutable artifacts out of a
//! [`pes_sim::ScenarioCache`] — exactly what the experiment drivers do since
//! the replay-throughput engine landed. `BENCH_replay.json` keeps both these
//! numbers and the regenerate-per-unit/clone-per-round medians recorded
//! before the change, under `session_replay/<phase>/...` names. The phase
//! segment comes from the `BENCH_PHASE` environment variable (default
//! `after`), so refreshing the current rows is
//! `BENCH_JSON=$PWD/BENCH_replay.json BENCH_PHASE=pr5 cargo bench -p
//! pes_bench --bench session_replay` from the repo root (absolute path —
//! the bench binary's working directory is the bench crate), and the
//! `before/` rows were recorded by running the pre-change bench (which
//! regenerated its artifacts per unit) with `BENCH_PHASE=before`. CI's
//! bench-regression gate (`.github/scripts/bench_gate.sh`) compares a
//! 1-sample smoke run of the kernel units below against the latest
//! recorded rows at a 3× tolerance. See EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use pes_acmp::units::{CpuCycles, TimeUs};
use pes_acmp::{CpuDemand, DvfsLadder, DvfsModel, LadderCache, Platform};
use pes_core::{
    window_shape, OracleScheduler, PesConfig, PesScheduler, SolveGeneration, SolveMemo, SolveShard,
};
use pes_ilp::{
    OptionOrder, ScheduleItem, ScheduleOption, ScheduleProblem, ScheduleSolution, SolveScratch,
};
use pes_predictor::{LearnerConfig, PredictScratch, SessionState, Trainer, TrainingConfig};
use pes_schedulers::{Ebs, InteractiveGovernor, OndemandGovernor};
use pes_sim::{run_reactive_with_plane, ScenarioCache};
use pes_webrt::{ExecutionEngine, QosPolicy};
use pes_workload::{AppCatalog, TraceGenerator, EVAL_SEED_BASE};

fn session_replay(c: &mut Criterion) {
    let platform = Platform::exynos_5410();
    let qos = QosPolicy::paper_defaults();
    let catalog = AppCatalog::paper_suite();
    let learner = Trainer::with_config(TrainingConfig {
        traces_per_app: 3,
        epochs: 20,
        ..Default::default()
    })
    .train_learner(&catalog, LearnerConfig::paper_defaults());
    let pes = PesScheduler::new(learner.clone(), PesConfig::paper_defaults());
    let oracle = OracleScheduler::new();
    let scenarios = ScenarioCache::build(&catalog, 1);
    // The shared DVFS power plane, as `ExperimentContext` provides it to the
    // drivers: one ladder per platform for every engine, scheduler context
    // and energy meter.
    let plane = Arc::new(DvfsLadder::for_platform(&platform));
    let app_idx = catalog
        .apps()
        .iter()
        .position(|a| a.name() == "cnn")
        .expect("cnn is in the paper suite");

    let phase = std::env::var("BENCH_PHASE").unwrap_or_else(|_| "after".to_string());
    let mut group = c.benchmark_group(&format!("session_replay/{phase}"));
    group.sample_size(10);

    // One figure-suite fan-out unit per policy, exactly as the drivers
    // execute it: the shared page and trace are fetched from the scenario
    // cache (an `Arc` clone each), then the session is replayed under the
    // scheduler on the shared power plane.
    group.bench_function("fig3_unit/Interactive", |b| {
        b.iter(|| {
            let trace = scenarios.trace(app_idx, 0);
            black_box(run_reactive_with_plane(
                &platform,
                &plane,
                &trace,
                &mut InteractiveGovernor::new(),
                &qos,
            ))
        })
    });
    group.bench_function("fig3_unit/Ondemand", |b| {
        b.iter(|| {
            let trace = scenarios.trace(app_idx, 0);
            black_box(run_reactive_with_plane(
                &platform,
                &plane,
                &trace,
                &mut OndemandGovernor::new(),
                &qos,
            ))
        })
    });
    group.bench_function("fig3_unit/EBS", |b| {
        b.iter(|| {
            let trace = scenarios.trace(app_idx, 0);
            black_box(run_reactive_with_plane(
                &platform,
                &plane,
                &trace,
                &mut Ebs::new(&platform),
                &qos,
            ))
        })
    });
    group.bench_function("fig3_unit/PES", |b| {
        b.iter(|| {
            let page = scenarios.page(app_idx);
            let trace = scenarios.trace(app_idx, 0);
            black_box(pes.run_trace_with_plane(&platform, &plane, &page, &trace, &qos))
        })
    });
    group.bench_function("fig3_unit/Oracle", |b| {
        b.iter(|| {
            let page = scenarios.page(app_idx);
            let trace = scenarios.trace(app_idx, 0);
            black_box(oracle.run_trace_with_plane(&platform, &plane, &page, &trace, &qos))
        })
    });

    // One full headline-comparison row: all five policies over one
    // (application, trace) pair, as fanned out by `full_comparison`.
    group.bench_function("fig3_row/all_policies", |b| {
        b.iter(|| {
            let mut energy = 0.0;
            for policy in 0..5 {
                let page = scenarios.page(app_idx);
                let trace = scenarios.trace(app_idx, 0);
                energy += match policy {
                    0 => run_reactive_with_plane(
                        &platform,
                        &plane,
                        &trace,
                        &mut InteractiveGovernor::new(),
                        &qos,
                    )
                    .total_energy
                    .as_millijoules(),
                    1 => run_reactive_with_plane(
                        &platform,
                        &plane,
                        &trace,
                        &mut OndemandGovernor::new(),
                        &qos,
                    )
                    .total_energy
                    .as_millijoules(),
                    2 => run_reactive_with_plane(
                        &platform,
                        &plane,
                        &trace,
                        &mut Ebs::new(&platform),
                        &qos,
                    )
                    .total_energy
                    .as_millijoules(),
                    3 => pes
                        .run_trace_with_plane(&platform, &plane, &page, &trace, &qos)
                        .total_energy
                        .as_millijoules(),
                    _ => oracle
                        .run_trace_with_plane(&platform, &plane, &page, &trace, &qos)
                        .total_energy
                        .as_millijoules(),
                };
            }
            black_box(energy)
        })
    });

    // One prediction round from a mid-session state: what every speculation
    // round of a PES replay pays. Clone-free: the round runs in a reusable
    // scratch whose session shares the live session's DOM.
    let page = scenarios.page(app_idx);
    let trace = scenarios.trace(app_idx, 0);
    let mut state = SessionState::new(page.tree.clone());
    for ev in trace.events().iter().take(6) {
        state.observe(ev);
    }
    let mut scratch = PredictScratch::new();
    group.bench_function("prediction_round", |b| {
        b.iter(|| {
            black_box(
                learner
                    .predict_sequence_with(black_box(&state), &mut scratch)
                    .len(),
            )
        })
    });

    // The same round through the packed f32 plane: identical chaining and
    // masking, but each inference is one class-major matrix row sweep
    // instead of seven f64 dot products.
    let mut packed_learner = learner.clone();
    packed_learner.set_config(LearnerConfig::paper_defaults().with_packed(true));
    let mut packed_scratch = PredictScratch::new();
    group.bench_function("prediction_round/packed", |b| {
        b.iter(|| {
            black_box(
                packed_learner
                    .predict_sequence_with(black_box(&state), &mut packed_scratch)
                    .len(),
            )
        })
    });

    // ------------------------------------------------------------------
    // Prediction-plane kernels (PR 8): one masked inference through the
    // retained f64 reference, the same inference through the packed f32
    // plane, and a 64-session shard through one `predict_many` matrix
    // pass. The acceptance bar is the batch path beating 64 scalar
    // inferences by ≥ 2×.
    // ------------------------------------------------------------------
    let classifier = learner.classifier();
    let packed = learner.packed();
    let mut probe = SessionState::new(page.tree.clone());
    for ev in trace.events().iter().take(6) {
        probe.observe(ev);
    }
    let features = probe.features();
    let mask = probe.allowed_types();
    let mut padded: Vec<f32> = Vec::new();
    packed.pad_features(&features, &mut padded);

    group.bench_function("predict_kernel/single_masked_f64", |b| {
        b.iter(|| black_box(classifier.predict_masked(black_box(&features), black_box(mask))))
    });
    group.bench_function("predict_kernel/single_masked_packed", |b| {
        b.iter(|| black_box(packed.predict_masked(black_box(&padded), black_box(mask))))
    });

    const SHARD: usize = 64;
    let mut rows: Vec<f32> = Vec::new();
    for _ in 0..SHARD {
        packed.pad_features_append(&features, &mut rows);
    }
    let masks = vec![mask; SHARD];
    let mut decisions = Vec::with_capacity(SHARD);
    group.bench_function("predict_kernel/batch_64_f64_reference", |b| {
        b.iter(|| {
            for _ in 0..SHARD {
                black_box(classifier.predict_masked(black_box(&features), black_box(mask)));
            }
        })
    });
    group.bench_function("predict_kernel/predict_many_64", |b| {
        b.iter(|| {
            packed.predict_many(black_box(&rows), black_box(&masks), &mut decisions);
            black_box(decisions.len())
        })
    });

    // The scenario artifacts alone: what regenerating them per unit used to
    // cost (and what the cache now pays once per (app, trace index)).
    let app = &catalog.apps()[app_idx];
    group.bench_function("scenario_artifacts/page_plus_trace", |b| {
        b.iter(|| {
            let page = app.build_page();
            black_box(TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE))
        })
    });

    // ------------------------------------------------------------------
    // Event fast-path kernels: the per-decision DVFS math that dominates
    // the Oracle unit (17-config window fills) and the EBS unit (reactive
    // decisions), isolated from the replay loop.
    // ------------------------------------------------------------------
    let dvfs = DvfsModel::new(&platform);
    let demand = CpuDemand::new(TimeUs::from_millis(4), CpuCycles::new(120_000_000));
    let budget = TimeUs::from_millis(120);

    // One cold 17-configuration evaluation — what every optimisation-window
    // item fill and every reactive decision paid per event before the
    // ladder, and what a cache miss pays now.
    let mut points_buf = Vec::new();
    group.bench_function("dvfs_decision/ladder_eval_17", |b| {
        b.iter(|| {
            dvfs.ladder().eval_into(black_box(&demand), &mut points_buf);
            black_box(DvfsLadder::cheapest_within(&points_buf, budget))
        })
    });

    // The steady-state reactive decision: demand-memo hit + budget scan —
    // the EBS fast path.
    let mut cache = LadderCache::new();
    group.bench_function("dvfs_decision/cached_decision", |b| {
        b.iter(|| {
            let points = cache.points(dvfs.ladder(), black_box(&demand));
            black_box(DvfsLadder::cheapest_within(points, budget))
        })
    });

    // ------------------------------------------------------------------
    // Solver kernels: what one optimisation-window solve costs the Oracle.
    // The 13x17 window mirrors the Oracle's 12 predicted events plus one
    // outstanding event; `exact` solves it to optimality under the
    // first-tier budget, `anytime` runs a greedy-hostile variant that the
    // depth-first search provably cannot finish, so the best-first
    // incumbent tier carries it under the wide-window budget.
    // ------------------------------------------------------------------
    let exact_window: Vec<ScheduleItem> = (0..13)
        .map(|i| ScheduleItem {
            release_us: i * 300_000,
            deadline_us: (i + 1) * 320_000,
            options: (0..17)
                .map(|j| ScheduleOption {
                    choice: j,
                    duration_us: 300_000 - j as u64 * 9_000,
                    cost: 1.0 + 0.3 * (j as f64).powf(1.6),
                })
                .collect(),
        })
        .collect();
    let exact_problem = ScheduleProblem::new(0, exact_window).with_node_limit(200_000);
    let mut scratch = SolveScratch::new();
    let mut solution = ScheduleSolution::default();
    group.bench_function("solver_window/oracle_13x17_exact", |b| {
        b.iter(|| {
            black_box(
                exact_problem
                    .solve_anytime_with(&mut scratch, &mut solution)
                    .unwrap(),
            )
        })
    });

    // Mirrors `greedy_hostile_chain(6)` in the pes_ilp unit suite
    // (crates/ilp/src/schedule.rs) constant for constant, so this unit
    // measures exactly the scenario the quality test locks down; keep the
    // two in lockstep when tuning. Solved with the runtime's wide-tier
    // settings: the 60 k budget and the ε incumbent-quality stop of
    // `PesConfig::paper_defaults()` — this is the wide-window worst case a
    // hostile trace would feel per decision.
    let hostile_window: Vec<ScheduleItem> = (0..6)
        .flat_map(|k| {
            let base = k * 3_000_000;
            [
                ScheduleItem {
                    release_us: base,
                    deadline_us: base + 3_000_000,
                    options: (0..17)
                        .map(|j| ScheduleOption {
                            choice: j,
                            duration_us: 2_500_000 - j as u64 * 90_000,
                            cost: 10.0 + 1.5 * (j as f64).powf(1.3),
                        })
                        .collect(),
                },
                ScheduleItem {
                    release_us: base + 500_000,
                    deadline_us: base + 1_800_000,
                    options: (0..17)
                        .map(|j| ScheduleOption {
                            choice: j,
                            duration_us: 1_500_000 - j as u64 * 50_000,
                            cost: 8.0 + 1.2 * (j as f64).powf(1.3),
                        })
                        .collect(),
                },
            ]
        })
        .collect();
    let hostile_problem = ScheduleProblem::new(0, hostile_window)
        .with_node_limit(60_000)
        .with_incumbent_gap(PesConfig::paper_defaults().incumbent_gap_epsilon);
    group.bench_function("solver_window/hostile_12x17_anytime", |b| {
        b.iter(|| {
            black_box(
                hostile_problem
                    .solve_anytime_with(&mut scratch, &mut solution)
                    .unwrap(),
            )
        })
    });

    // What a cache-miss re-pose costs the runtime's solve-memoisation ring:
    // re-tabling a 13-item window in place, no allocations. The `rebuild`
    // unit sorts every option row per item (the Oracle's exact-demand
    // path); the `rebuild_sorted` unit walks the pre-sorted orders the
    // ladder cache memoises with its rows (the PES path), skipping the
    // sorts that dominated a re-pose.
    let mut recycled = ScheduleProblem::new(0, Vec::new());
    let posed_items: Vec<ScheduleItem> = exact_problem.items().to_vec();
    group.bench_function("solver_window/rebuild_13x17", |b| {
        b.iter(|| {
            recycled.rebuild(0, black_box(&posed_items));
            black_box(recycled.items().len())
        })
    });
    let posed_orders: Vec<OptionOrder> = posed_items
        .iter()
        .map(|item| OptionOrder::from_options(&item.options))
        .collect();
    group.bench_function("solver_window/rebuild_13x17_sorted", |b| {
        b.iter(|| {
            recycled.rebuild_sorted(0, black_box(&posed_items), black_box(&posed_orders));
            black_box(recycled.items().len())
        })
    });

    // ------------------------------------------------------------------
    // Shared-memo kernels (PR 9): what the fleet's cross-replay cache
    // costs per operation. `generation_hit_cycle16` cycles 16 distinct
    // windows through one 8-slot ring, so every probe misses the ring and
    // is answered by the published generation — the steady-state cost a
    // repeated-config sweep pays instead of a cold solve.
    // `publish_4x4` folds one 16-entry generation plus four 4-entry
    // worker shards into the next generation — the between-batches merge.
    // ------------------------------------------------------------------
    let shared_windows: Vec<(Vec<ScheduleItem>, u64)> = (0..16u64)
        .map(|w| {
            let items: Vec<ScheduleItem> = (0..5)
                .map(|i| ScheduleItem {
                    release_us: i * 200_000,
                    deadline_us: (i + 1) * 220_000 + w * 1_000,
                    options: (0..5)
                        .map(|j| ScheduleOption {
                            choice: j,
                            duration_us: 180_000 - j as u64 * 9_000 - w * 500,
                            cost: 1.0 + 0.4 * (j as f64) + 0.01 * w as f64,
                        })
                        .collect(),
                })
                .collect();
            let shape = window_shape(
                items.iter().map(|it| (it.deadline_us, it.release_us)),
                items.iter(),
            );
            (items, shape)
        })
        .collect();
    let solve_all = |memo: &mut SolveMemo,
                     scratch: &mut SolveScratch,
                     generation: &SolveGeneration,
                     shard: &mut SolveShard| {
        let mut nodes = 0usize;
        for (items, shape) in &shared_windows {
            nodes += memo
                .solve_shared(
                    items, None, *shape, 200_000, 0.0, scratch, generation, shard,
                )
                .unwrap();
        }
        nodes
    };
    let mut warm_memo = SolveMemo::new();
    let mut warm_shard = SolveShard::new();
    solve_all(
        &mut warm_memo,
        &mut scratch,
        &SolveGeneration::empty(),
        &mut warm_shard,
    );
    let generation = SolveGeneration::publish(&SolveGeneration::empty(), &[warm_shard], 512);
    assert_eq!(generation.len(), 16, "every cold solve must publish");

    let mut probe_memo = SolveMemo::new();
    let mut sink_shard = SolveShard::new();
    group.bench_function("shared_memo/generation_hit_cycle16", |b| {
        b.iter(|| {
            black_box(solve_all(
                &mut probe_memo,
                &mut scratch,
                black_box(&generation),
                &mut sink_shard,
            ))
        })
    });

    let worker_shards: Vec<SolveShard> = shared_windows
        .chunks(4)
        .map(|chunk| {
            let mut memo = SolveMemo::new();
            let mut shard = SolveShard::new();
            for (items, shape) in chunk {
                memo.solve_shared(
                    items,
                    None,
                    *shape,
                    200_000,
                    0.0,
                    &mut scratch,
                    &SolveGeneration::empty(),
                    &mut shard,
                )
                .unwrap();
            }
            shard
        })
        .collect();
    group.bench_function("shared_memo/publish_4x4", |b| {
        b.iter(|| {
            black_box(
                SolveGeneration::publish(black_box(&generation), black_box(&worker_shards), 512)
                    .len(),
            )
        })
    });

    // ------------------------------------------------------------------
    // Engine-floor kernels (PR 10): the execute → vsync → meter → outcome
    // chain that every one of the five policies pays identically per
    // replay, isolated from scheduling decisions. The `ledger` unit runs
    // the default engine (presentation-feedback frame scheduler +
    // per-frame ledger); the `reference` unit replays the identical event
    // stream through the retained pre-PR-10 per-event accounting path.
    // The configuration alternates so the chain includes transitions, and
    // commits go through the full QoS/outcome bookkeeping.
    // ------------------------------------------------------------------
    let floor_trace = scenarios.trace(app_idx, 0);
    let cfg_fast = platform.max_performance_config();
    let cfg_slow = platform.min_power_config();
    group.bench_function("engine_floor/execute_commit_31_ledger", |b| {
        b.iter(|| {
            let mut engine = ExecutionEngine::with_plane(&platform, qos, Arc::clone(&plane));
            for (i, ev) in floor_trace.events().iter().enumerate() {
                let cfg = if i % 4 == 0 { cfg_slow } else { cfg_fast };
                let record = engine.execute_event(ev, &cfg, false);
                engine.commit(ev, record.frame_ready_at);
            }
            black_box((engine.violations(), engine.total_energy()))
        })
    });
    group.bench_function("engine_floor/execute_commit_31_reference", |b| {
        b.iter(|| {
            let mut engine = ExecutionEngine::with_plane(&platform, qos, Arc::clone(&plane))
                .with_reference_accounting();
            for (i, ev) in floor_trace.events().iter().enumerate() {
                let cfg = if i % 4 == 0 { cfg_slow } else { cfg_fast };
                let record = engine.execute_event(ev, &cfg, false);
                engine.commit(ev, record.frame_ready_at);
            }
            black_box((engine.violations(), engine.total_energy()))
        })
    });
    group.finish();
}

criterion_group! {
    name = replay;
    config = Criterion::default().sample_size(10);
    targets = session_replay
}
criterion_main!(replay);
