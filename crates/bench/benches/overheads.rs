//! Sec. 6.3 runtime-overhead micro-benchmarks: predictor inference (the paper
//! reports ~2 µs), one constrained-optimisation solve (~10 ms budget,
//! amortised over the window), and a single reactive scheduling decision.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pes_acmp::{DvfsModel, Platform};
use pes_core::{PesConfig, PesScheduler};
use pes_ilp::{ScheduleItem, ScheduleOption, ScheduleProblem};
use pes_predictor::{LearnerConfig, SessionState, Trainer, TrainingConfig};
use pes_schedulers::{Ebs, ScheduleContext, Scheduler};
use pes_webrt::QosPolicy;
use pes_workload::{AppCatalog, TraceGenerator, EVAL_SEED_BASE};

fn predictor_inference(c: &mut Criterion) {
    let catalog = AppCatalog::paper_suite();
    let learner = Trainer::with_config(TrainingConfig {
        traces_per_app: 3,
        epochs: 20,
        ..Default::default()
    })
    .train_learner(&catalog, LearnerConfig::paper_defaults());
    let app = catalog.find("cnn").unwrap();
    let page = app.build_page();
    let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE);
    let mut state = SessionState::new(page.tree.clone());
    for ev in trace.events().iter().take(6) {
        state.observe(ev);
    }
    c.bench_function("predict_next_event (logistic inference)", |b| {
        b.iter(|| black_box(learner.predict_next(black_box(&state))))
    });
    c.bench_function("predict_event_sequence (one prediction round)", |b| {
        b.iter(|| black_box(learner.predict_sequence(black_box(&state))))
    });
}

fn optimizer_solve(c: &mut Criterion) {
    // A PES-sized window: 6 events x 17 configurations.
    let items: Vec<ScheduleItem> = (0..6)
        .map(|i| ScheduleItem {
            release_us: i * 300_000,
            deadline_us: (i + 1) * 300_000 + 300_000,
            options: (0..17)
                .map(|j| ScheduleOption {
                    choice: j,
                    duration_us: 280_000u64.saturating_sub(j as u64 * 12_000),
                    cost: 1.0 + j as f64 * 0.9,
                })
                .collect(),
        })
        .collect();
    c.bench_function("constrained optimisation solve (6 events x 17 configs)", |b| {
        b.iter(|| {
            let problem = ScheduleProblem::new(0, black_box(items.clone()));
            black_box(problem.solve().unwrap())
        })
    });
}

fn scheduling_decisions(c: &mut Criterion) {
    let platform = Platform::exynos_5410();
    let dvfs = DvfsModel::new(&platform);
    let qos = QosPolicy::paper_defaults();
    let catalog = AppCatalog::paper_suite();
    let app = catalog.find("bbc").unwrap();
    let page = app.build_page();
    let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE);
    let event = trace.events()[2];

    let mut ebs = Ebs::new(&platform);
    let ctx = ScheduleContext {
        platform: &platform,
        dvfs: &dvfs,
        qos: &qos,
        start_time: event.arrival(),
        current_config: platform.min_power_config(),
    };
    c.bench_function("EBS per-event scheduling decision", |b| {
        b.iter(|| black_box(ebs.schedule_event(black_box(&ctx), black_box(&event))))
    });

    let learner = Trainer::with_config(TrainingConfig {
        traces_per_app: 2,
        epochs: 10,
        ..Default::default()
    })
    .train_learner(&catalog, LearnerConfig::paper_defaults());
    let pes = PesScheduler::new(learner, PesConfig::paper_defaults());
    c.bench_function("PES full-session replay (one ~25-event trace)", |b| {
        b.iter(|| black_box(pes.run_trace(&platform, &page, &trace, &qos)))
    });
}

criterion_group! {
    name = overheads;
    config = Criterion::default().sample_size(20);
    targets = predictor_inference, optimizer_solve, scheduling_decisions
}
criterion_main!(overheads);
