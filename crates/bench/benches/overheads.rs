//! Sec. 6.3 runtime-overhead micro-benchmarks: predictor inference (the paper
//! reports ~2 µs), one constrained-optimisation solve (~10 ms budget,
//! amortised over the window), and a single reactive scheduling decision.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pes_acmp::{DvfsModel, Platform};
use pes_core::{PesConfig, PesScheduler};
use pes_ilp::{ScheduleItem, ScheduleOption, ScheduleProblem, ScheduleSolution, SolveScratch};
use pes_predictor::{LearnerConfig, SessionState, Trainer, TrainingConfig};
use pes_schedulers::{Ebs, ScheduleContext, Scheduler};
use pes_webrt::QosPolicy;
use pes_workload::{AppCatalog, TraceGenerator, EVAL_SEED_BASE};

fn predictor_inference(c: &mut Criterion) {
    let catalog = AppCatalog::paper_suite();
    let learner = Trainer::with_config(TrainingConfig {
        traces_per_app: 3,
        epochs: 20,
        ..Default::default()
    })
    .train_learner(&catalog, LearnerConfig::paper_defaults());
    let app = catalog.find("cnn").unwrap();
    let page = app.build_page();
    let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE);
    let mut state = SessionState::new(page.tree.clone());
    for ev in trace.events().iter().take(6) {
        state.observe(ev);
    }
    c.bench_function("predict_next_event (logistic inference)", |b| {
        b.iter(|| black_box(learner.predict_next(black_box(&mut state))))
    });
    c.bench_function("predict_event_sequence (one prediction round)", |b| {
        b.iter(|| black_box(learner.predict_sequence(black_box(&state))))
    });
}

fn optimizer_solve(c: &mut Criterion) {
    // A PES-sized window: 6 events x 17 configurations.
    let items: Vec<ScheduleItem> = (0..6)
        .map(|i| ScheduleItem {
            release_us: i * 300_000,
            deadline_us: (i + 1) * 300_000 + 300_000,
            options: (0..17)
                .map(|j| ScheduleOption {
                    choice: j,
                    duration_us: 280_000u64.saturating_sub(j as u64 * 12_000),
                    cost: 1.0 + j as f64 * 0.9,
                })
                .collect(),
        })
        .collect();
    c.bench_function(
        "constrained optimisation solve (6 events x 17 configs)",
        |b| {
            b.iter(|| {
                let problem = ScheduleProblem::new(0, black_box(items.clone()));
                black_box(problem.solve().unwrap())
            })
        },
    );
}

/// A PES-style window of `n` events × 17 ACMP configurations with a convex
/// (DVFS-like) energy/latency trade-off and tight cumulative deadlines
/// (~55 % slack) so the branch-and-bound genuinely searches — a slack-rich
/// window is solved by the first greedy dive and measures nothing.
fn pressured_window(n: u64) -> ScheduleProblem {
    let items: Vec<ScheduleItem> = (0..n)
        .map(|i| ScheduleItem {
            release_us: i * 60_000,
            deadline_us: (i + 1) * 154_000,
            options: (0..17)
                .map(|j| ScheduleOption {
                    choice: j,
                    duration_us: 280_000u64.saturating_sub(j as u64 * 12_000),
                    cost: 1.0 + 0.25 * (j as f64).powf(1.7),
                })
                .collect(),
        })
        .collect();
    ScheduleProblem::new(0, items)
}

/// Sweeps the optimisation window size (2–12 events × 17 configs), comparing
/// the optimised allocation-free solver against the retained pre-optimisation
/// reference.
///
/// Two tiers: `exact/*` solves 2–6-event windows to optimality with no node
/// cap (the honest speedup — the 6×17 PES window is the paper-scale case);
/// `capped/*` runs 7–12-event windows under the runtime's 200 k node budget
/// (`PesConfig::optimizer_node_limit`), measuring the bounded worst-case
/// per-decision latency after which the runtime falls back to greedy.
/// Record a baseline with `BENCH_JSON=BENCH_solver.json cargo bench ...`.
fn schedule_window_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_window_scaling");
    group.sample_size(10);
    for n in [2u64, 3, 4, 5, 6] {
        let problem = pressured_window(n);
        let mut scratch = SolveScratch::new();
        let mut solution = ScheduleSolution::default();
        group.bench_function(&format!("exact/optimised/{n}x17"), |b| {
            b.iter(|| black_box(problem.solve_with(&mut scratch, &mut solution).is_ok()))
        });
        group.bench_function(&format!("exact/reference/{n}x17"), |b| {
            b.iter(|| black_box(problem.solve_reference().is_ok()))
        });
    }
    for n in [7u64, 8, 10, 12] {
        let problem = pressured_window(n).with_node_limit(200_000);
        let mut scratch = SolveScratch::new();
        let mut solution = ScheduleSolution::default();
        group.bench_function(&format!("capped/optimised/{n}x17"), |b| {
            b.iter(|| black_box(problem.solve_with(&mut scratch, &mut solution).is_ok()))
        });
        group.bench_function(&format!("capped/reference/{n}x17"), |b| {
            b.iter(|| black_box(problem.solve_reference().is_ok()))
        });
    }
    group.finish();
}

fn scheduling_decisions(c: &mut Criterion) {
    let platform = Platform::exynos_5410();
    let dvfs = DvfsModel::new(&platform);
    let qos = QosPolicy::paper_defaults();
    let catalog = AppCatalog::paper_suite();
    let app = catalog.find("bbc").unwrap();
    let page = app.build_page();
    let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE);
    let event = trace.events()[2];

    let mut ebs = Ebs::new(&platform);
    let ctx = ScheduleContext {
        platform: &platform,
        dvfs: &dvfs,
        qos: &qos,
        start_time: event.arrival(),
        current_config: platform.min_power_config(),
    };
    c.bench_function("EBS per-event scheduling decision", |b| {
        b.iter(|| black_box(ebs.schedule_event(black_box(&ctx), black_box(&event))))
    });

    let learner = Trainer::with_config(TrainingConfig {
        traces_per_app: 2,
        epochs: 10,
        ..Default::default()
    })
    .train_learner(&catalog, LearnerConfig::paper_defaults());
    let pes = PesScheduler::new(learner, PesConfig::paper_defaults());
    c.bench_function("PES full-session replay (one ~25-event trace)", |b| {
        b.iter(|| black_box(pes.run_trace(&platform, &page, &trace, &qos)))
    });
}

criterion_group! {
    name = overheads;
    config = Criterion::default().sample_size(20);
    targets = predictor_inference, optimizer_solve, schedule_window_scaling, scheduling_decisions
}
criterion_main!(overheads);
