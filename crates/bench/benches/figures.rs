//! Figure-scale end-to-end benchmarks: how long it takes to regenerate the
//! headline comparison for one application under each policy. These are the
//! building blocks the `figures` binary sweeps over the whole suite.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pes_acmp::Platform;
use pes_core::{OracleScheduler, PesConfig, PesScheduler};
use pes_predictor::{LearnerConfig, Trainer, TrainingConfig};
use pes_schedulers::{Ebs, InteractiveGovernor};
use pes_sim::run_reactive;
use pes_webrt::QosPolicy;
use pes_workload::{AppCatalog, TraceGenerator, EVAL_SEED_BASE};

fn per_policy_replay(c: &mut Criterion) {
    let platform = Platform::exynos_5410();
    let qos = QosPolicy::paper_defaults();
    let catalog = AppCatalog::paper_suite();
    let app = catalog.find("cnn").unwrap();
    let page = app.build_page();
    let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE);
    let learner = Trainer::with_config(TrainingConfig {
        traces_per_app: 2,
        epochs: 10,
        ..Default::default()
    })
    .train_learner(&catalog, LearnerConfig::paper_defaults());

    let mut group = c.benchmark_group("fig11_single_app_replay");
    group.sample_size(20);
    group.bench_function("Interactive", |b| {
        b.iter(|| {
            black_box(run_reactive(
                &platform,
                &trace,
                &mut InteractiveGovernor::new(),
                &qos,
            ))
        })
    });
    group.bench_function("EBS", |b| {
        b.iter(|| {
            black_box(run_reactive(
                &platform,
                &trace,
                &mut Ebs::new(&platform),
                &qos,
            ))
        })
    });
    let pes = PesScheduler::new(learner, PesConfig::paper_defaults());
    group.bench_function("PES", |b| {
        b.iter(|| black_box(pes.run_trace(&platform, &page, &trace, &qos)))
    });
    let oracle = OracleScheduler::new();
    group.bench_function("Oracle", |b| {
        b.iter(|| black_box(oracle.run_trace(&platform, &page, &trace, &qos)))
    });
    group.finish();
}

fn trace_generation_and_training(c: &mut Criterion) {
    let catalog = AppCatalog::paper_suite();
    let app = catalog.find("amazon").unwrap();
    let page = app.build_page();
    let mut group = c.benchmark_group("workload_and_training");
    group.sample_size(10);
    group.bench_function("generate one user trace", |b| {
        b.iter(|| black_box(TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE)))
    });
    group.bench_function("train predictor (reduced protocol)", |b| {
        b.iter(|| {
            black_box(
                Trainer::with_config(TrainingConfig {
                    traces_per_app: 2,
                    epochs: 5,
                    ..Default::default()
                })
                .train(&catalog),
            )
        })
    });
    group.finish();
}

criterion_group!(figures, per_policy_replay, trace_generation_and_training);
criterion_main!(figures);
