//! Regenerates every table and figure of the paper's evaluation as text
//! tables.
//!
//! Usage:
//!
//! ```text
//! cargo run -p pes_bench --release --bin figures -- [all|fig2|fig3|table1|fig8|ablation-dom|
//!                                                    fig9|fig10|fig11|fig12|fig13|fig14|tx2|overheads]
//!                                                   [--traces N] [--serial]
//! ```
//!
//! The experiment drivers fan their `(application, trace, scheduler)` units
//! out over scoped threads (one worker per core by default; override with the
//! `PES_THREADS` environment variable). `--serial` forces `PES_THREADS=1`;
//! the output is byte-identical either way, only the wall clock changes.

use pes_bench::{mean, pct, std_dev};
use pes_core::PesConfig;
use pes_sim::{
    fig10_waste, fig13_pareto, fig14_sensitivity, fig2_case_study, fig3_event_types, fig8_accuracy,
    fig9_pfb_trace, full_comparison, AppComparison, ExperimentContext,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--serial") {
        // Must happen before any worker threads exist.
        std::env::set_var("PES_THREADS", "1");
    }
    let traces = args
        .iter()
        .position(|a| a == "--traces")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--") && a.parse::<usize>().is_err())
        .map(|s| s.as_str())
        .collect();
    let which = if which.is_empty() { vec!["all"] } else { which };
    let wants = |name: &str| which.contains(&"all") || which.contains(&name);

    eprintln!(
        "# building experiment context ({traces} evaluation traces per app, {} worker thread(s))...",
        pes_sim::parallelism()
    );
    let started = std::time::Instant::now();
    let ctx = ExperimentContext::new(traces);

    if wants("table1") {
        table1();
    }
    if wants("fig2") {
        fig2(&ctx);
    }
    if wants("fig3") {
        fig3(&ctx);
    }
    if wants("fig8") || wants("ablation-dom") {
        fig8(&ctx);
    }
    if wants("fig9") {
        fig9(&ctx);
    }
    if wants("fig10") {
        fig10(&ctx);
    }
    let mut comparisons: Option<Vec<AppComparison>> = None;
    if wants("fig11") || wants("fig12") || wants("fig13") {
        let c = full_comparison(&ctx);
        fig11(&c);
        fig12(&c);
        fig13(&c);
        comparisons = Some(c);
    }
    if wants("fig14") {
        fig14(&ctx);
    }
    if wants("tx2") {
        tx2(traces);
    }
    if wants("overheads") {
        overheads(&ctx, comparisons.as_deref());
    }
    eprintln!(
        "# done in {:.1}s ({} worker thread(s))",
        started.elapsed().as_secs_f64(),
        pes_sim::parallelism()
    );
}

fn table1() {
    println!("\n== Table 1: predictor model features ==");
    println!("application-inherent : clickable region percentage in the viewport");
    println!("application-inherent : visible link percentage in the viewport");
    println!("interaction-dependent: distance to the previous click in the window");
    println!("interaction-dependent: number of navigations in the window");
    println!("interaction-dependent: number of scrolls in the window");
    println!("interaction-dependent: events since last navigation / last tap (window position)");
    println!("interaction-dependent: most recent event type (window encoding)");
}

fn fig2(ctx: &ExperimentContext) {
    println!("\n== Fig. 2: four-event cnn.com case study ==");
    let study = fig2_case_study(ctx);
    for (policy, timeline) in &study.timelines {
        println!("-- {policy}");
        for e in timeline {
            println!(
                "   {}  trigger {:>7.2}s  start {:>7.2}s  displayed {:>7.2}s  deadline {:>7.2}s  {}",
                e.label,
                e.triggered_at.as_secs_f64(),
                e.started_at.as_secs_f64(),
                e.displayed_at.as_secs_f64(),
                e.deadline.as_secs_f64(),
                if e.violated { "VIOLATED" } else { "ok" }
            );
        }
    }
    for (policy, energy) in &study.energy_mj {
        println!("   energy[{policy}] = {energy:.1} mJ");
    }
}

fn fig3(ctx: &ExperimentContext) {
    println!("\n== Fig. 3: event-type distribution under EBS (seen apps) ==");
    println!(
        "{:<16} {:>8} {:>8} {:>9} {:>8}",
        "app", "Type I", "Type II", "Type III", "Type IV"
    );
    let rows = fig3_event_types(ctx);
    let mut missing = Vec::new();
    let mut wasting = Vec::new();
    for (app, d) in &rows {
        println!(
            "{:<16} {:>8} {:>8} {:>9} {:>8}",
            app,
            pct(d.type_i),
            pct(d.type_ii),
            pct(d.type_iii),
            pct(d.type_iv)
        );
        missing.push(d.qos_missing());
        wasting.push(d.energy_wasting());
    }
    println!(
        "average QoS-missing (I+II): {}   energy-wasting (III): {}   [paper: ~21% and ~14%]",
        pct(mean(&missing)),
        pct(mean(&wasting))
    );
}

fn fig8(ctx: &ExperimentContext) {
    println!("\n== Fig. 8: event predictor accuracy ==");
    let with_dom = fig8_accuracy(ctx, true);
    let without_dom = fig8_accuracy(ctx, false);
    println!(
        "{:<16} {:>6} {:>10} {:>14}",
        "app", "seen", "accuracy", "w/o DOM (abl.)"
    );
    for ((app, seen, acc), (_, _, acc_no_dom)) in with_dom.iter().zip(&without_dom) {
        println!(
            "{:<16} {:>6} {:>10} {:>14}",
            app,
            seen,
            pct(*acc),
            pct(*acc_no_dom)
        );
    }
    let seen: Vec<f64> = with_dom.iter().filter(|r| r.1).map(|r| r.2).collect();
    let unseen: Vec<f64> = with_dom.iter().filter(|r| !r.1).map(|r| r.2).collect();
    let no_dom_all: Vec<f64> = without_dom.iter().map(|r| r.2).collect();
    let with_dom_all: Vec<f64> = with_dom.iter().map(|r| r.2).collect();
    println!(
        "seen avg {} (std {:.1}pp)   unseen avg {} (std {:.1}pp)   [paper: 91.3% / 89.2%]",
        pct(mean(&seen)),
        100.0 * std_dev(&seen),
        pct(mean(&unseen)),
        100.0 * std_dev(&unseen)
    );
    println!(
        "Sec. 6.5 DOM ablation: accuracy drop without DOM analysis = {:.1}pp   [paper: ~5pp]",
        100.0 * (mean(&with_dom_all) - mean(&no_dom_all))
    );
}

fn fig9(ctx: &ExperimentContext) {
    println!("\n== Fig. 9: pending frame buffer occupancy over an ebay session ==");
    let trace = fig9_pfb_trace(ctx, "ebay");
    let series: Vec<String> = trace.iter().map(|(i, n)| format!("({i},{n})")).collect();
    println!("(event index, PFB size): {}", series.join(" "));
    let max = trace.iter().map(|(_, n)| *n).max().unwrap_or(0);
    println!("maximum occupancy: {max}   [paper's example peaks around 9]");
}

fn fig10(ctx: &ExperimentContext) {
    println!("\n== Fig. 10: misprediction waste ==");
    println!(
        "{:<16} {:>6} {:>12} {:>16}",
        "app", "seen", "waste (ms)", "energy overhead"
    );
    let rows = fig10_waste(ctx);
    let mut seen_ms = Vec::new();
    let mut unseen_ms = Vec::new();
    let mut fractions = Vec::new();
    for (app, seen, ms, frac) in &rows {
        println!("{:<16} {:>6} {:>12.1} {:>16}", app, seen, ms, pct(*frac));
        if *seen {
            seen_ms.push(*ms);
        } else {
            unseen_ms.push(*ms);
        }
        fractions.push(*frac);
    }
    println!(
        "average waste: seen {:.1} ms, unseen {:.1} ms; energy overhead {}   [paper: ~20 ms, 1.8–2.2%]",
        mean(&seen_ms),
        mean(&unseen_ms),
        pct(mean(&fractions))
    );
}

fn fig11(comparisons: &[AppComparison]) {
    println!("\n== Fig. 11: energy normalised to Interactive ==");
    println!(
        "{:<16} {:>6} {:>12} {:>8} {:>8} {:>8}",
        "app", "seen", "Interactive", "EBS", "PES", "Oracle"
    );
    for c in comparisons {
        println!(
            "{:<16} {:>6} {:>12} {:>8} {:>8} {:>8}",
            c.app,
            c.seen,
            "100%",
            pct(c.normalized_energy("EBS").unwrap_or(1.0)),
            pct(c.normalized_energy("PES").unwrap_or(1.0)),
            pct(c.normalized_energy("Oracle").unwrap_or(1.0)),
        );
    }
    summary(comparisons, true);
    summary(comparisons, false);
}

fn summary(comparisons: &[AppComparison], seen: bool) {
    let subset: Vec<&AppComparison> = comparisons.iter().filter(|c| c.seen == seen).collect();
    if subset.is_empty() {
        return;
    }
    let avg = |p: &str| {
        mean(
            &subset
                .iter()
                .filter_map(|c| c.normalized_energy(p))
                .collect::<Vec<_>>(),
        )
    };
    let pes = avg("PES");
    let ebs = avg("EBS");
    let oracle = avg("Oracle");
    println!(
        "{} apps: PES saves {} vs Interactive, {} vs EBS; Oracle saves {} vs Interactive",
        if seen { "seen" } else { "unseen" },
        pct(1.0 - pes),
        pct(1.0 - pes / ebs),
        pct(1.0 - oracle),
    );
}

fn fig12(comparisons: &[AppComparison]) {
    println!("\n== Fig. 12: QoS violation rates ==");
    println!(
        "{:<16} {:>6} {:>12} {:>8} {:>8} {:>8}",
        "app", "seen", "Interactive", "EBS", "PES", "Oracle"
    );
    for c in comparisons {
        println!(
            "{:<16} {:>6} {:>12} {:>8} {:>8} {:>8}",
            c.app,
            c.seen,
            pct(c.violation_of("Interactive").unwrap_or(0.0)),
            pct(c.violation_of("EBS").unwrap_or(0.0)),
            pct(c.violation_of("PES").unwrap_or(0.0)),
            pct(c.violation_of("Oracle").unwrap_or(0.0)),
        );
    }
    for seen in [true, false] {
        let subset: Vec<&AppComparison> = comparisons.iter().filter(|c| c.seen == seen).collect();
        let avg = |p: &str| {
            mean(
                &subset
                    .iter()
                    .filter_map(|c| c.violation_of(p))
                    .collect::<Vec<_>>(),
            )
        };
        println!(
            "{} apps: Interactive {}, EBS {}, PES {}  (PES reduction vs EBS: {})",
            if seen { "seen" } else { "unseen" },
            pct(avg("Interactive")),
            pct(avg("EBS")),
            pct(avg("PES")),
            pct(1.0 - avg("PES") / avg("EBS").max(1e-9)),
        );
    }
}

fn fig13(comparisons: &[AppComparison]) {
    println!("\n== Fig. 13: Pareto analysis (seen-suite averages) ==");
    println!(
        "{:<14} {:>18} {:>16}",
        "policy", "normalised energy", "QoS violation"
    );
    for (policy, energy, violation) in fig13_pareto(comparisons) {
        println!("{:<14} {:>18} {:>16}", policy, pct(energy), pct(violation));
    }
}

fn fig14(ctx: &ExperimentContext) {
    println!("\n== Fig. 14: sensitivity to the prediction confidence threshold ==");
    let thresholds = [0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
    let points = fig14_sensitivity(ctx, &thresholds, 4);
    println!(
        "{:>10} {:>16} {:>26}",
        "threshold", "energy vs EBS", "QoS-violation reduction"
    );
    for p in &points {
        println!(
            "{:>10} {:>16} {:>26}",
            pct(p.threshold),
            pct(p.energy_vs_ebs),
            pct(p.qos_violation_reduction)
        );
    }
}

fn tx2(traces: usize) {
    println!("\n== Sec. 6.5 other devices: NVIDIA TX2 (Parker) ==");
    let ctx = ExperimentContext::new(traces).on_tx2();
    let comparisons = full_comparison(&ctx);
    summary(&comparisons, true);
    summary(&comparisons, false);
}

fn overheads(ctx: &ExperimentContext, comparisons: Option<&[AppComparison]>) {
    println!("\n== Sec. 6.3 runtime overheads (see also `cargo bench -p pes-bench`) ==");
    // Prediction degree and solver work measured on one representative app,
    // replayed from the shared scenario artifacts.
    let pes = pes_core::PesScheduler::new(ctx.learner.clone(), PesConfig::paper_defaults());
    if let Some(app_idx) = ctx.app_index("cnn") {
        let page = ctx.scenarios.page(app_idx);
        let trace = ctx.scenarios.trace(app_idx, 0);
        let report = pes.run_trace(&ctx.platform, &page, &trace, &ctx.qos);
        println!(
            "cnn session: prediction rounds {}, average degree {:.1}, optimizer B&B nodes {} total",
            report.prediction_rounds,
            report.average_prediction_degree(),
            report.solver_nodes
        );
        println!(
            "online prediction accuracy {}, misprediction waste {:.1} ms, waste energy {}",
            pct(report.prediction_accuracy()),
            report.average_waste_ms(),
            pct(report.waste_energy_fraction())
        );
    }
    if comparisons.is_some() {
        println!(
            "(energy/QoS summaries above include DVFS switch 100 us and migration 20 us overheads)"
        );
    }
}
