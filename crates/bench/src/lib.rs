//! # pes-bench — benchmarks and figure regeneration
//!
//! This crate hosts:
//!
//! * the `figures` binary (`cargo run -p pes-bench --release --bin figures`),
//!   which regenerates every table and figure of the paper's evaluation as
//!   text tables (see EXPERIMENTS.md for the recorded output),
//! * Criterion micro-benchmarks for the Sec. 6.3 overhead analysis
//!   (`benches/overheads.rs`), figure-scale end-to-end runs
//!   (`benches/figures.rs`) and the design-choice ablations
//!   (`benches/ablations.rs`).

#![warn(missing_docs)]

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Mean of a slice (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Sample standard deviation (0 for fewer than two samples).
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_behave() {
        assert_eq!(pct(0.125), "12.5%");
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert!((std_dev(&[1.0, 3.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }
}
