//! # pes — Proactive Event Scheduling for mobile Web computing
//!
//! A from-scratch Rust reproduction of *PES: Proactive Event Scheduling for
//! Responsive and Energy-Efficient Mobile Web Computing* (Feng & Zhu,
//! ISCA 2019). This facade crate re-exports every sub-crate of the workspace
//! and hosts the runnable examples and the cross-crate integration tests.
//!
//! The system is organised bottom-up:
//!
//! * [`acmp`] — the big.LITTLE hardware model (operating points, DVFS
//!   latency model, power tables, energy metering),
//! * [`dom`] — DOM tree, Semantic Tree and Likely-Next-Event-Set analysis,
//! * [`webrt`] — the event-driven Web runtime (events, QoS targets,
//!   rendering pipeline, VSync, execution engine),
//! * [`workload`] — the 18-application suite and seeded user-session traces,
//! * [`ilp`] — the constrained-optimisation solvers (Eqn. 2–5),
//! * [`predictor`] — the hybrid learning-analytical event predictor,
//! * [`schedulers`] — the reactive baselines (Interactive, Ondemand, EBS),
//! * [`core`] — PES itself plus the Oracle,
//! * [`sim`] — the simulation harness and per-figure experiment drivers.
//!
//! # Quick start
//!
//! ```no_run
//! use pes::core::{PesConfig, PesScheduler};
//! use pes::predictor::{LearnerConfig, Trainer};
//! use pes::workload::{AppCatalog, TraceGenerator, EVAL_SEED_BASE};
//!
//! // Train the event predictor once, offline (Sec. 5.5).
//! let catalog = AppCatalog::paper_suite();
//! let learner = Trainer::new().train_learner(&catalog, LearnerConfig::paper_defaults());
//!
//! // Replay a user session of cnn.com under PES on the Exynos 5410 model.
//! let app = catalog.find("cnn").unwrap();
//! let page = app.build_page();
//! let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE);
//! let pes = PesScheduler::new(learner, PesConfig::paper_defaults());
//! let report = pes.run_trace(
//!     &pes::acmp::Platform::exynos_5410(),
//!     &page,
//!     &trace,
//!     &pes::webrt::QosPolicy::paper_defaults(),
//! );
//! println!("energy {}  violations {}", report.total_energy, report.violations);
//! ```

#![warn(missing_docs)]

pub use pes_acmp as acmp;
pub use pes_core as core;
pub use pes_dom as dom;
pub use pes_ilp as ilp;
pub use pes_predictor as predictor;
pub use pes_schedulers as schedulers;
pub use pes_sim as sim;
pub use pes_webrt as webrt;
pub use pes_workload as workload;
