//! Ignored micro-profiling harness for the PR-10 engine-floor work; run
//! manually with `cargo test --release --test engine_floor_micro -- --ignored --nocapture`.

use std::sync::Arc;
use std::time::Instant;

use pes::acmp::units::{CpuCycles, TimeUs};
use pes::acmp::{CpuDemand, DvfsLadder, Platform};
use pes::dom::EventType;
use pes::webrt::{EventId, ExecutionEngine, QosPolicy, WebEvent};

fn events() -> Vec<WebEvent> {
    (0..31u64)
        .map(|i| {
            WebEvent::new(
                EventId::new(i),
                [EventType::Click, EventType::Scroll, EventType::Load][(i % 3) as usize],
                None,
                TimeUs::from_micros(i * 150_000),
                CpuDemand::new(
                    TimeUs::from_millis(5),
                    CpuCycles::new((10 + i % 50) * 1_000_000),
                ),
            )
        })
        .collect()
}

#[test]
#[ignore]
fn engine_floor_micro() {
    let platform = Platform::exynos_5410();
    let plane = Arc::new(DvfsLadder::for_platform(&platform));
    let qos = QosPolicy::paper_defaults();
    let evs = events();
    let cfg_fast = platform.max_performance_config();
    let cfg_slow = platform.min_power_config();
    const N: usize = 20_000;

    for mode in ["ledger", "reference"] {
        let t = Instant::now();
        let mut sink = 0usize;
        for _ in 0..N {
            let mut engine = ExecutionEngine::with_plane(&platform, qos, Arc::clone(&plane));
            if mode == "reference" {
                engine = engine.with_reference_accounting();
            }
            for (i, ev) in evs.iter().enumerate() {
                let cfg = if i % 4 == 0 { cfg_slow } else { cfg_fast };
                let record = engine.execute_event(ev, &cfg, false);
                engine.commit(ev, record.frame_ready_at);
            }
            sink += engine.violations();
        }
        let per = t.elapsed().as_nanos() as f64 / N as f64;
        println!(
            "{mode}: {per:.0} ns/replay ({:.1} ns/event)  sink={sink}",
            per / 31.0
        );
    }
}
