//! Property-based tests of the core invariants, using proptest.

use proptest::prelude::*;

use pes::acmp::units::{CpuCycles, FreqMhz, TimeUs};
use pes::acmp::{AcmpConfig, CoreKind, CpuDemand, DvfsModel, Platform};
use pes::dom::{DomAnalyzer, PageBuilder, Viewport};
use pes::ilp::{ScheduleItem, ScheduleOption, ScheduleProblem};
use pes::webrt::VsyncClock;

proptest! {
    /// Eqn. 1: latency is non-increasing in effective throughput for any demand.
    #[test]
    fn latency_monotone_in_throughput(mem_ms in 0u64..500, mcycles in 0u64..5_000) {
        let platform = Platform::exynos_5410();
        let model = DvfsModel::new(&platform);
        let demand = CpuDemand::new(TimeUs::from_millis(mem_ms), CpuCycles::new(mcycles * 1_000_000));
        let latencies: Vec<u64> = platform
            .configs()
            .iter()
            .map(|cfg| model.execution_time(&demand, cfg).as_micros())
            .collect();
        prop_assert!(latencies.windows(2).all(|w| w[0] >= w[1]));
    }

    /// Demand recovery from two exact observations reproduces the demand.
    #[test]
    fn demand_recovery_is_consistent(
        mem_ms in 1u64..300,
        mcycles in 50u64..4_000,
        f1_idx in 0usize..5,
        f2_idx in 6usize..10,
    ) {
        let platform = Platform::exynos_5410();
        let model = DvfsModel::new(&platform);
        let big = platform.cluster_for(CoreKind::BigA15).unwrap();
        let demand = CpuDemand::new(TimeUs::from_millis(mem_ms), CpuCycles::new(mcycles * 1_000_000));
        let cfg_a = AcmpConfig::new(CoreKind::BigA15, big.frequencies()[f1_idx]);
        let cfg_b = AcmpConfig::new(CoreKind::BigA15, big.frequencies()[f2_idx]);
        let t_a = model.execution_time(&demand, &cfg_a);
        let t_b = model.execution_time(&demand, &cfg_b);
        let recovered = model.recover_demand((cfg_a, t_a), (cfg_b, t_b)).unwrap();
        let rel = |a: u64, b: u64| (a as f64 - b as f64).abs() / (b as f64).max(1.0);
        prop_assert!(rel(recovered.ref_cycles().get(), demand.ref_cycles().get()) < 0.05);
    }

    /// The next VSync never precedes frame readiness and is at most one
    /// period away.
    #[test]
    fn vsync_wait_is_bounded(ready_us in 0u64..10_000_000) {
        let clock = VsyncClock::sixty_hz();
        let ready = TimeUs::from_micros(ready_us);
        let shown = clock.next_refresh_at_or_after(ready);
        prop_assert!(shown >= ready);
        prop_assert!(shown - ready < clock.period());
        prop_assert_eq!(shown.as_micros() % clock.period().as_micros(), 0);
    }

    /// The specialised scheduler solver never returns an infeasible schedule
    /// when the greedy policy finds a feasible one, and never costs more than
    /// greedy at equal violations.
    #[test]
    fn optimal_schedule_dominates_greedy(
        durations in proptest::collection::vec((10_000u64..400_000, 1u64..10), 1..6),
        slack_ms in 50u64..2_000,
    ) {
        let items: Vec<ScheduleItem> = durations
            .iter()
            .enumerate()
            .map(|(i, (dur, cost))| ScheduleItem {
                release_us: i as u64 * 100_000,
                deadline_us: (i as u64 + 1) * 100_000 + slack_ms * 1_000,
                options: vec![
                    ScheduleOption { choice: 0, duration_us: *dur, cost: *cost as f64 },
                    ScheduleOption { choice: 1, duration_us: dur / 3, cost: *cost as f64 * 3.0 },
                ],
            })
            .collect();
        let problem = ScheduleProblem::new(0, items);
        let optimal = problem.solve().unwrap();
        let greedy = problem.solve_greedy().unwrap();
        prop_assert!(optimal.violations <= greedy.violations);
        if optimal.violations == greedy.violations {
            prop_assert!(optimal.total_cost <= greedy.total_cost + 1e-9);
        }
        // Completion times are monotone.
        prop_assert!(optimal.finish_us.windows(2).all(|w| w[0] <= w[1]));
    }

    /// The LNES only ever contains events registered on visible nodes (plus
    /// the synthetic document-level scroll/navigate entries on the root).
    #[test]
    fn lnes_only_contains_visible_targets(
        nav_links in 1usize..8,
        articles in 0usize..20,
        menu_items in 0usize..8,
        scroll_to in 0i64..4_000,
    ) {
        let page = PageBuilder::new(360)
            .nav_bar(nav_links)
            .collapsible_menu(menu_items)
            .article_list(articles, true)
            .text_block(1_500)
            .build();
        let mut viewport = Viewport::phone();
        viewport.scroll_to(scroll_to);
        let lnes = DomAnalyzer::new().lnes(&page.tree, &viewport);
        for possible in lnes.events() {
            if possible.node == page.tree.root() {
                continue;
            }
            prop_assert!(page.tree.is_effectively_visible(possible.node, &viewport));
        }
    }

    /// Energy accounting is additive: metering two intervals equals metering
    /// them separately.
    #[test]
    fn energy_metering_is_additive(ms_a in 1u64..500, ms_b in 1u64..500, cfg_idx in 0usize..17) {
        use pes::acmp::{ActivityKind, EnergyMeter};
        let platform = Platform::exynos_5410();
        let cfg = platform.configs()[cfg_idx % platform.configs().len()];
        let mut combined = EnergyMeter::new(&platform);
        combined.record_busy(&cfg, TimeUs::from_millis(ms_a + ms_b), ActivityKind::UsefulWork);
        let mut split = EnergyMeter::new(&platform);
        split.record_busy(&cfg, TimeUs::from_millis(ms_a), ActivityKind::UsefulWork);
        split.record_busy(&cfg, TimeUs::from_millis(ms_b), ActivityKind::UsefulWork);
        let diff = (combined.total().as_microjoules() - split.total().as_microjoules()).abs();
        prop_assert!(diff < 1.0, "difference {diff} uJ");
    }

    /// Frequencies snap onto the ladder and never exceed its bounds.
    #[test]
    fn frequency_snapping_stays_on_the_ladder(target in 0u32..3_000) {
        let platform = Platform::exynos_5410();
        for cluster in platform.clusters() {
            let snapped = cluster.snap_up(FreqMhz::new(target));
            prop_assert!(cluster.frequencies().contains(&snapped));
        }
    }
}
