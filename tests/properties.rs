//! Property-based tests of the core invariants, using proptest.

use proptest::prelude::*;

use pes::acmp::units::{CpuCycles, FreqMhz, TimeUs};
use pes::acmp::{
    AcmpConfig, ActivityKind, CoreKind, CpuDemand, DvfsLadder, DvfsModel, EnergyMeter, Platform,
};
use pes::core::SolveMemo;
use pes::dom::{
    CallbackEffect, DomAnalyzer, EventType, IncrementalAnalyzer, PageBuilder, Viewport,
};
use pes::ilp::{
    OptionOrder, ScheduleItem, ScheduleOption, ScheduleProblem, ScheduleSolution, SolveScratch,
    SolveTier,
};
use pes::webrt::VsyncClock;

proptest! {
    /// Eqn. 1: latency is non-increasing in effective throughput for any demand.
    #[test]
    fn latency_monotone_in_throughput(mem_ms in 0u64..500, mcycles in 0u64..5_000) {
        let platform = Platform::exynos_5410();
        let model = DvfsModel::new(&platform);
        let demand = CpuDemand::new(TimeUs::from_millis(mem_ms), CpuCycles::new(mcycles * 1_000_000));
        let latencies: Vec<u64> = platform
            .configs()
            .iter()
            .map(|cfg| model.execution_time(&demand, cfg).as_micros())
            .collect();
        prop_assert!(latencies.windows(2).all(|w| w[0] >= w[1]));
    }

    /// Demand recovery from two exact observations reproduces the demand.
    #[test]
    fn demand_recovery_is_consistent(
        mem_ms in 1u64..300,
        mcycles in 50u64..4_000,
        f1_idx in 0usize..5,
        f2_idx in 6usize..10,
    ) {
        let platform = Platform::exynos_5410();
        let model = DvfsModel::new(&platform);
        let big = platform.cluster_for(CoreKind::BigA15).unwrap();
        let demand = CpuDemand::new(TimeUs::from_millis(mem_ms), CpuCycles::new(mcycles * 1_000_000));
        let cfg_a = AcmpConfig::new(CoreKind::BigA15, big.frequencies()[f1_idx]);
        let cfg_b = AcmpConfig::new(CoreKind::BigA15, big.frequencies()[f2_idx]);
        let t_a = model.execution_time(&demand, &cfg_a);
        let t_b = model.execution_time(&demand, &cfg_b);
        let recovered = model.recover_demand((cfg_a, t_a), (cfg_b, t_b)).unwrap();
        let rel = |a: u64, b: u64| (a as f64 - b as f64).abs() / (b as f64).max(1.0);
        prop_assert!(rel(recovered.ref_cycles().get(), demand.ref_cycles().get()) < 0.05);
    }

    /// The next VSync never precedes frame readiness and is at most one
    /// period away.
    #[test]
    fn vsync_wait_is_bounded(ready_us in 0u64..10_000_000) {
        let clock = VsyncClock::sixty_hz();
        let ready = TimeUs::from_micros(ready_us);
        let shown = clock.next_refresh_at_or_after(ready);
        prop_assert!(shown >= ready);
        prop_assert!(shown - ready < clock.period());
        prop_assert_eq!(shown.as_micros() % clock.period().as_micros(), 0);
    }

    /// The specialised scheduler solver never returns an infeasible schedule
    /// when the greedy policy finds a feasible one, and never costs more than
    /// greedy at equal violations.
    #[test]
    fn optimal_schedule_dominates_greedy(
        durations in proptest::collection::vec((10_000u64..400_000, 1u64..10), 1..6),
        slack_ms in 50u64..2_000,
    ) {
        let items: Vec<ScheduleItem> = durations
            .iter()
            .enumerate()
            .map(|(i, (dur, cost))| ScheduleItem {
                release_us: i as u64 * 100_000,
                deadline_us: (i as u64 + 1) * 100_000 + slack_ms * 1_000,
                options: vec![
                    ScheduleOption { choice: 0, duration_us: *dur, cost: *cost as f64 },
                    ScheduleOption { choice: 1, duration_us: dur / 3, cost: *cost as f64 * 3.0 },
                ],
            })
            .collect();
        let problem = ScheduleProblem::new(0, items);
        let optimal = problem.solve().unwrap();
        let greedy = problem.solve_greedy().unwrap();
        prop_assert!(optimal.violations <= greedy.violations);
        if optimal.violations == greedy.violations {
            prop_assert!(optimal.total_cost <= greedy.total_cost + 1e-9);
        }
        // Completion times are monotone.
        prop_assert!(optimal.finish_us.windows(2).all(|w| w[0] <= w[1]));
    }

    /// The LNES only ever contains events registered on visible nodes (plus
    /// the synthetic document-level scroll/navigate entries on the root).
    #[test]
    fn lnes_only_contains_visible_targets(
        nav_links in 1usize..8,
        articles in 0usize..20,
        menu_items in 0usize..8,
        scroll_to in 0i64..4_000,
    ) {
        let page = PageBuilder::new(360)
            .nav_bar(nav_links)
            .collapsible_menu(menu_items)
            .article_list(articles, true)
            .text_block(1_500)
            .build();
        let mut viewport = Viewport::phone();
        viewport.scroll_to(scroll_to);
        let lnes = DomAnalyzer::new().lnes(&page.tree, &viewport);
        for possible in lnes.events() {
            if possible.node == page.tree.root() {
                continue;
            }
            prop_assert!(page.tree.is_effectively_visible(possible.node, &viewport));
        }
    }

    /// Energy accounting is additive: metering two intervals equals metering
    /// them separately.
    #[test]
    fn energy_metering_is_additive(ms_a in 1u64..500, ms_b in 1u64..500, cfg_idx in 0usize..17) {
        use pes::acmp::{ActivityKind, EnergyMeter};
        let platform = Platform::exynos_5410();
        let cfg = platform.configs()[cfg_idx % platform.configs().len()];
        let mut combined = EnergyMeter::new(&platform);
        combined.record_busy(&cfg, TimeUs::from_millis(ms_a + ms_b), ActivityKind::UsefulWork);
        let mut split = EnergyMeter::new(&platform);
        split.record_busy(&cfg, TimeUs::from_millis(ms_a), ActivityKind::UsefulWork);
        split.record_busy(&cfg, TimeUs::from_millis(ms_b), ActivityKind::UsefulWork);
        let diff = (combined.total().as_microjoules() - split.total().as_microjoules()).abs();
        prop_assert!(diff < 1.0, "difference {diff} uJ");
    }

    /// Frequencies snap onto the ladder and never exceed its bounds.
    #[test]
    fn frequency_snapping_stays_on_the_ladder(target in 0u32..3_000) {
        let platform = Platform::exynos_5410();
        for cluster in platform.clusters() {
            let snapped = cluster.snap_up(FreqMhz::new(target));
            prop_assert!(cluster.frequencies().contains(&snapped));
        }
    }
}

// ---------------------------------------------------------------------------
// Event fast-path differentials: the incremental DOM analyzer vs the
// full-rescan analyzer, and the precomputed DVFS ladder vs the direct model.
// ---------------------------------------------------------------------------

proptest! {
    /// Differential: the incremental analyzer produces identical viewport
    /// features and LNES type bitmasks to a full rescan over arbitrary
    /// interleavings of scroll, navigation-reset, menu-toggle and untracked
    /// DOM-mutation events, on arbitrarily shaped pages.
    #[test]
    fn incremental_analyzer_matches_full_rescan_over_event_sequences(
        nav_links in 1usize..6,
        articles in 0usize..12,
        menu_items in 0usize..6,
        text_height in 0i64..3_000,
        ops in proptest::collection::vec((0u8..5, 0usize..8, -1_500i64..3_000), 1..40),
    ) {
        let page = PageBuilder::new(360)
            .nav_bar(nav_links)
            .collapsible_menu(menu_items)
            .article_list(articles, true)
            .text_block(text_height)
            .build();
        let analyzer = DomAnalyzer::new();
        let mut inc = IncrementalAnalyzer::new();
        let mut tree = page.tree.clone();
        let mut vp = Viewport::phone();
        for (step, (op, pick, amount)) in ops.iter().enumerate() {
            match op {
                // Scroll by an arbitrary (possibly negative) delta.
                0 => vp.scroll_by(*amount),
                // Navigation: the viewport resets to the top of the page.
                1 => vp.scroll_to(0),
                // Menu toggle driven through the fast path, as the session
                // state drives it.
                2 | 3 if !page.menu_buttons.is_empty() => {
                    let button = page.menu_buttons[pick % page.menu_buttons.len()];
                    let effect = tree.node(button).unwrap().listener(EventType::Click).unwrap();
                    let CallbackEffect::ToggleVisibility(menu) = effect else {
                        panic!("menu buttons toggle");
                    };
                    let pre = tree.stamp();
                    let mut scratch_vp = vp;
                    std::sync::Arc::make_mut(&mut tree)
                        .apply_effect(effect, &mut scratch_vp)
                        .unwrap();
                    inc.note_toggle(pre, &tree, menu);
                }
                // An untracked mutation (the analyzer is not told): the
                // stamp guard must force a rebuild instead of serving stale
                // aggregates.
                4 if !page.links.is_empty() => {
                    let link = page.links[pick % page.links.len()];
                    let t = std::sync::Arc::make_mut(&mut tree);
                    let displayed = t.node(link).unwrap().is_displayed();
                    t.set_displayed(link, !displayed).unwrap();
                }
                _ => {}
            }
            prop_assert_eq!(
                inc.viewport_features(&analyzer, &tree, &vp),
                analyzer.viewport_features(&tree, &vp),
                "features diverged at step {} (op {}, scroll {})",
                step, op, vp.scroll_y()
            );
            prop_assert_eq!(
                inc.lnes_types(&analyzer, &tree, &vp),
                analyzer.lnes_types(&tree, &vp),
                "LNES mask diverged at step {} (op {}, scroll {})",
                step, op, vp.scroll_y()
            );
        }
    }

    /// Differential: ladder-evaluated latency/energy and the budget selector
    /// agree bit-for-bit with the direct per-call model on random demands.
    #[test]
    fn dvfs_ladder_matches_direct_model_on_random_demands(
        mem_us in 0u64..2_000_000,
        kcycles in 0u64..5_000_000,
        budget_us in 0u64..4_000_000,
    ) {
        let platform = Platform::exynos_5410();
        let model = DvfsModel::new(&platform);
        let demand = CpuDemand::new(TimeUs::from_micros(mem_us), CpuCycles::new(kcycles * 1_000));
        let mut points = Vec::new();
        model.ladder().eval_into(&demand, &mut points);
        for (point, cfg) in points.iter().zip(platform.configs()) {
            prop_assert_eq!(point.time, model.execution_time(&demand, cfg));
            prop_assert!(
                point.energy_uj.to_bits()
                    == model.marginal_energy_reference(&demand, cfg).as_microjoules().to_bits()
            );
        }
        let budget = TimeUs::from_micros(budget_us);
        prop_assert_eq!(
            DvfsLadder::cheapest_within(&points, budget),
            model.cheapest_config_within_reference(&demand, budget)
        );
    }
}

/// Exhaustive ladder check: every configuration of both modelled platforms ×
/// a demand grid spanning idle pseudo-events to heavy page loads. The
/// precomputed ladder must reproduce the direct `execution_time` /
/// `marginal_energy` values bit-for-bit — this is the lockdown that lets the
/// schedulers consume the ladder without any behavioural drift.
#[test]
fn ladder_is_exhaustively_bit_identical_to_the_direct_model() {
    let mem_grid_us = [0u64, 1, 137, 1_000, 5_000, 33_000, 200_000, 3_000_000];
    let cycle_grid = [
        0u64,
        999,
        25_000_000,
        120_000_000,
        300_000_000,
        1_400_000_000,
        7_000_000_000,
    ];
    for platform in [Platform::exynos_5410(), Platform::tx2_parker()] {
        let model = DvfsModel::new(&platform);
        let mut points = Vec::new();
        for &mem in &mem_grid_us {
            for &cycles in &cycle_grid {
                let demand = CpuDemand::new(TimeUs::from_micros(mem), CpuCycles::new(cycles));
                model.ladder().eval_into(&demand, &mut points);
                assert_eq!(points.len(), platform.configs().len());
                for (point, cfg) in points.iter().zip(platform.configs()) {
                    assert_eq!(point.config, *cfg);
                    assert_eq!(
                        point.time,
                        model.execution_time(&demand, cfg),
                        "latency drift on {} at ({mem}us, {cycles} cycles)",
                        cfg
                    );
                    assert_eq!(
                        point.energy_uj.to_bits(),
                        model
                            .marginal_energy_reference(&demand, cfg)
                            .as_microjoules()
                            .to_bits(),
                        "energy drift on {} at ({mem}us, {cycles} cycles)",
                        cfg
                    );
                    assert_eq!(
                        model
                            .marginal_energy(&demand, cfg)
                            .as_microjoules()
                            .to_bits(),
                        model
                            .marginal_energy_reference(&demand, cfg)
                            .as_microjoules()
                            .to_bits()
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Solver equivalence properties: the optimised branch-and-bound vs the
// generic 0/1 ILP encoding and vs the retained pre-optimisation reference.
// ---------------------------------------------------------------------------

/// Builds a window from `(duration, cost)` seeds: each event offers a cheap
/// slow option and an expensive fast option, with staggered releases and a
/// per-event slack budget.
fn window_from_specs(specs: &[(u64, u64)], slack_ms: u64) -> ScheduleProblem {
    let items: Vec<ScheduleItem> = specs
        .iter()
        .enumerate()
        .map(|(i, (duration, cost))| ScheduleItem {
            release_us: i as u64 * 100_000,
            deadline_us: (i as u64 + 1) * 100_000 + slack_ms * 1_000,
            options: vec![
                ScheduleOption {
                    choice: 0,
                    duration_us: *duration,
                    cost: *cost as f64,
                },
                ScheduleOption {
                    choice: 1,
                    duration_us: duration / 3,
                    cost: *cost as f64 * 3.0,
                },
            ],
        })
        .collect();
    ScheduleProblem::new(0, items)
}

proptest! {
    /// The specialised branch-and-bound and the generic 0/1 ILP encoding
    /// (Eqn. 2/4) agree on the optimal cost of feasible random instances.
    #[test]
    fn specialised_and_generic_ilp_agree_on_random_instances(
        specs in proptest::collection::vec((20_000u64..200_000, 1u64..9), 1..5),
        slack_ms in 150u64..1_500,
    ) {
        let problem = window_from_specs(&specs, slack_ms);
        let specialised = problem.solve().unwrap();
        if specialised.violations == 0 {
            // The generic encoding has hard deadline constraints, so it only
            // has a solution when the instance is feasible.
            let generic = problem.to_generic_ilp().solve().unwrap();
            let mut generic_cost = 0.0;
            let mut offset = 0;
            for item in problem.items() {
                let picked: Vec<usize> = (0..item.options.len())
                    .filter(|j| generic.assignment[offset + j])
                    .collect();
                prop_assert_eq!(picked.len(), 1, "exactly one option per event");
                generic_cost += item.options[picked[0]].cost;
                offset += item.options.len();
            }
            prop_assert!(
                (generic_cost - specialised.total_cost).abs() < 1e-6,
                "generic {generic_cost} vs specialised {}",
                specialised.total_cost
            );
        } else {
            prop_assert!(problem.to_generic_ilp().solve().is_err(),
                "infeasible windows must have no generic ILP solution");
        }
    }

    /// The optimised solver (cached option order, greedy pruning cap,
    /// earliest-finish lower bound, scratch reuse) returns bit-identical
    /// schedules to the pre-optimisation reference search, never exploring
    /// more nodes.
    #[test]
    fn optimised_solver_is_bit_identical_to_reference(
        specs in proptest::collection::vec((15_000u64..350_000, 1u64..10), 1..6),
        slack_ms in 40u64..2_000,
    ) {
        let problem = window_from_specs(&specs, slack_ms);
        let optimised = problem.solve().unwrap();
        let reference = problem.solve_reference().unwrap();
        prop_assert_eq!(&optimised.selected, &reference.selected);
        prop_assert_eq!(&optimised.choices, &reference.choices);
        prop_assert_eq!(&optimised.finish_us, &reference.finish_us);
        prop_assert_eq!(optimised.violations, reference.violations);
        prop_assert!(optimised.total_cost.to_bits() == reference.total_cost.to_bits(),
            "total cost must be bit-identical");
        prop_assert!(optimised.nodes_explored <= reference.nodes_explored);
    }

    /// Under a node budget, the adaptive-bound solve (greedy fallback on
    /// budget exhaustion, mirroring the PES runtime) never returns a worse
    /// lexicographic `(violations, cost)` objective than the reference
    /// solver run the same way. The instances are PES-shaped: 17-option
    /// convex cost curves wide and tight enough that the 24 k-node budget
    /// genuinely engages the adaptive probe on the hard cases.
    #[test]
    fn adaptive_capped_solve_never_worse_than_reference_capped(
        n in 2u64..10,
        base_dur in 150_000u64..350_000,
        step in 5_000u64..15_000,
        slack_pct in 40u64..160,
        curve_tenths in 10u64..25,
    ) {
        let items: Vec<ScheduleItem> = (0..n)
            .map(|i| ScheduleItem {
                release_us: i * 60_000,
                deadline_us: (i + 1) * (base_dur * slack_pct / 100),
                options: (0..17)
                    .map(|j| ScheduleOption {
                        choice: j,
                        duration_us: base_dur.saturating_sub(j as u64 * step),
                        cost: 1.0 + 0.25 * (j as f64).powf(curve_tenths as f64 / 10.0),
                    })
                    .collect(),
            })
            .collect();
        let problem = ScheduleProblem::new(0, items).with_node_limit(24_000);
        let optimised = problem.solve().or_else(|_| problem.solve_greedy()).unwrap();
        let reference = problem
            .solve_reference()
            .or_else(|_| problem.solve_greedy())
            .unwrap();
        prop_assert!(
            optimised.violations < reference.violations
                || (optimised.violations == reference.violations
                    && optimised.total_cost <= reference.total_cost + 1e-9),
            "adaptive capped objective ({}, {}) worse than reference capped ({}, {})",
            optimised.violations,
            optimised.total_cost,
            reference.violations,
            reference.total_cost
        );
    }
}

/// Lexicographic `(violations, cost)` dominance: `a` no worse than `b`.
fn lex_no_worse(a: &ScheduleSolution, b: &ScheduleSolution) -> bool {
    a.violations < b.violations
        || (a.violations == b.violations && a.total_cost <= b.total_cost + 1e-9)
}

/// A PES/Oracle-shaped window: `n` events × 17-option convex cost curves
/// with randomised load, the shape both the memo-ring and sorted-rebuild
/// bit-identity properties below exercise.
fn shaped_window(
    n: u64,
    base_dur: u64,
    step: u64,
    slack_pct: u64,
    curve_quarters: u64,
    release_gap: u64,
) -> Vec<ScheduleItem> {
    (0..n)
        .map(|i| ScheduleItem {
            release_us: i * release_gap,
            deadline_us: (i + 1) * (base_dur * slack_pct / 100),
            options: (0..17)
                .map(|j| ScheduleOption {
                    choice: j,
                    duration_us: base_dur.saturating_sub(j as u64 * step),
                    cost: 1.0 + 0.25 * curve_quarters as f64 * (j * j) as f64 / 16.0,
                })
                .collect(),
        })
        .collect()
}

/// The stable sorted option orders of a window — the canonical
/// `OptionOrder::from_options` reference, shared with the ladder cache's
/// row orders.
fn stable_orders(items: &[ScheduleItem]) -> Vec<OptionOrder> {
    items
        .iter()
        .map(|item| OptionOrder::from_options(&item.options))
        .collect()
}

/// Field-for-field bit identity of two schedules (total cost compared on
/// its bit pattern, not within an epsilon).
fn assert_bit_identical(a: &ScheduleSolution, b: &ScheduleSolution) {
    assert_eq!(&a.selected, &b.selected);
    assert_eq!(&a.choices, &b.choices);
    assert_eq!(&a.finish_us, &b.finish_us);
    assert_eq!(a.violations, b.violations);
    assert!(
        a.total_cost.to_bits() == b.total_cost.to_bits(),
        "total cost drifted: {} vs {}",
        a.total_cost,
        b.total_cost
    );
}

proptest! {
    /// The shape-tolerant memo ring's hit contract: re-posing a window that
    /// revalidates against a cached slot returns a schedule (and therefore
    /// energy) bit-identical to a cold solve of the same posed window —
    /// with decoy windows interleaved so the hit comes from a mid-ring
    /// slot, and under both the sorted-row and the sorting re-pose path.
    #[test]
    fn shape_tolerant_memo_hits_are_bit_identical_to_cold_solves(
        n in 6u64..=12,
        base_dur in 150_000u64..350_000,
        step in 5_000u64..15_000,
        slack_pct in 40u64..160,
        curve_quarters in 2u64..9,
        release_gap in 20_000u64..120_000,
        decoys in 1u64..4,
        sorted_flag in 0u64..2,
    ) {
        let sorted_rows = sorted_flag == 1;
        let items = shaped_window(n, base_dur, step, slack_pct, curve_quarters, release_gap);
        let orders = stable_orders(&items);
        let orders_arg = if sorted_rows { Some(&orders[..]) } else { None };
        // The fingerprint the runtime would compute is opaque to the ring;
        // any deterministic value works as long as equal windows share it.
        let shape = items.iter().fold(n, |h, i| {
            h.wrapping_mul(0x100000001b3) ^ i.deadline_us ^ i.release_us.rotate_left(17)
        });
        let mut scratch = SolveScratch::new();

        let mut memo = SolveMemo::new();
        let nodes = memo.solve(&items, orders_arg, shape, 24_000, 0.01, &mut scratch).unwrap();
        prop_assert!(nodes > 0, "first pose must solve");
        let first = memo.solution().clone();

        // Decoy windows push the slot into the middle of the ring.
        for d in 0..decoys {
            let decoy = shaped_window(
                6 + d,
                base_dur / 2 + d * 10_000,
                step,
                slack_pct,
                curve_quarters,
                release_gap,
            );
            let decoy_orders = stable_orders(&decoy);
            memo.solve(&decoy, Some(&decoy_orders), shape ^ (d + 1), 24_000, 0.01, &mut scratch)
                .unwrap();
        }

        let hit_nodes = memo.solve(&items, orders_arg, shape, 24_000, 0.01, &mut scratch).unwrap();
        prop_assert_eq!(hit_nodes, 0, "the re-posed window must revalidate as a hit");
        let hit = memo.solution().clone();

        // A cold ring solving the same posed window answers bit-identically.
        let mut cold = SolveMemo::new();
        cold.solve(&items, orders_arg, shape, 24_000, 0.01, &mut scratch).unwrap();
        assert_bit_identical(&hit, &first);
        assert_bit_identical(&hit, cold.solution());
    }

    /// The sorted-row re-pose is bit-identical to the sorting path: every
    /// solver table (the derived `PartialEq` spans them all) and every
    /// anytime solve agree exactly.
    #[test]
    fn sorted_row_rebuild_is_bit_identical_to_the_sorting_path(
        n in 1u64..=12,
        base_dur in 150_000u64..350_000,
        step in 0u64..15_000,
        slack_pct in 40u64..160,
        curve_quarters in 0u64..9,
        release_gap in 20_000u64..120_000,
    ) {
        // `step == 0` makes every duration equal and `curve_quarters == 0`
        // every cost equal: the all-ties cases where only stable ordering
        // keeps the two paths aligned.
        let items = shaped_window(n, base_dur, step, slack_pct, curve_quarters, release_gap);
        let orders = stable_orders(&items);
        prop_assert!(orders.iter().zip(&items).all(|(o, i)| o.is_valid_for(&i.options)));

        let mut sorting = ScheduleProblem::new(0, Vec::new()).with_node_limit(24_000);
        sorting.rebuild(0, &items);
        let mut sorted = ScheduleProblem::new(0, Vec::new()).with_node_limit(24_000);
        sorted.rebuild_sorted(0, &items, &orders);
        prop_assert_eq!(&sorting, &sorted);

        let mut scratch = SolveScratch::new();
        let mut a = ScheduleSolution::default();
        let mut b = ScheduleSolution::default();
        let tier_a = sorting.solve_anytime_with(&mut scratch, &mut a).unwrap();
        let tier_b = sorted.solve_anytime_with(&mut scratch, &mut b).unwrap();
        prop_assert_eq!(tier_a, tier_b);
        assert_bit_identical(&a, &b);
    }

    /// The ε incumbent-quality stop never weakens the anytime quality
    /// contract: with the runtime's default gap configured, a capped solve
    /// is still never lexicographically worse than the greedy schedule.
    #[test]
    fn incumbent_gap_stop_never_worse_than_greedy(
        n in 6u64..=12,
        base_dur in 150_000u64..350_000,
        step in 5_000u64..15_000,
        slack_pct in 40u64..160,
        curve_quarters in 2u64..9,
        release_gap in 20_000u64..120_000,
    ) {
        let items = shaped_window(n, base_dur, step, slack_pct, curve_quarters, release_gap);
        let problem = ScheduleProblem::new(0, items)
            .with_node_limit(24_000)
            .with_incumbent_gap(pes::core::PesConfig::paper_defaults().incumbent_gap_epsilon);
        let greedy = problem.solve_greedy().unwrap();
        let mut scratch = SolveScratch::new();
        let mut solution = ScheduleSolution::default();
        problem.solve_anytime_with(&mut scratch, &mut solution).unwrap();
        prop_assert!(
            lex_no_worse(&solution, &greedy),
            "ε-stopped anytime ({}, {}) worse than greedy ({}, {})",
            solution.violations, solution.total_cost, greedy.violations, greedy.total_cost
        );
    }
}

proptest! {
    /// The anytime solver's quality contract on PES/Oracle-shaped windows
    /// (6–12 events × 17-option convex cost curves, randomized load):
    ///
    /// * the capped solve's lexicographic `(violations, cost)` objective is
    ///   never worse than the greedy fallback's,
    /// * and never worse than the depth-first capped search's (which
    ///   cliff-drops to greedy at budget exhaustion — the behaviour the
    ///   anytime tier replaces),
    /// * and when the depth-first search completes within the budget (the
    ///   exact tier), the schedule is bit-identical to `solve_reference`.
    ///
    /// Costs are multiples of 0.25 so all float comparisons are exact.
    #[test]
    fn anytime_capped_solve_never_worse_than_greedy_or_depth_first(
        n in 6u64..=12,
        base_dur in 150_000u64..350_000,
        step in 5_000u64..15_000,
        slack_pct in 40u64..160,
        curve_quarters in 2u64..9,
        release_gap in 20_000u64..120_000,
    ) {
        let items: Vec<ScheduleItem> = (0..n)
            .map(|i| ScheduleItem {
                release_us: i * release_gap,
                deadline_us: (i + 1) * (base_dur * slack_pct / 100),
                options: (0..17)
                    .map(|j| ScheduleOption {
                        choice: j,
                        duration_us: base_dur.saturating_sub(j as u64 * step),
                        cost: 1.0 + 0.25 * curve_quarters as f64 * (j * j) as f64 / 16.0,
                    })
                    .collect(),
            })
            .collect();
        let problem = ScheduleProblem::new(0, items).with_node_limit(24_000);
        let mut scratch = SolveScratch::new();
        let mut anytime = ScheduleSolution::default();
        let tier = problem.solve_anytime_with(&mut scratch, &mut anytime).unwrap();
        prop_assert_eq!(anytime.selected.len(), n as usize);

        let greedy = problem.solve_greedy().unwrap();
        prop_assert!(
            lex_no_worse(&anytime, &greedy),
            "anytime ({}, {}) worse than greedy ({}, {})",
            anytime.violations, anytime.total_cost, greedy.violations, greedy.total_cost
        );

        // The pre-anytime capped behaviour: exact when the depth-first
        // search finishes, greedy otherwise.
        let depth_first = problem.solve().or_else(|_| problem.solve_greedy()).unwrap();
        prop_assert!(
            lex_no_worse(&anytime, &depth_first),
            "anytime ({}, {}) worse than depth-first capped ({}, {})",
            anytime.violations, anytime.total_cost, depth_first.violations, depth_first.total_cost
        );

        if tier == SolveTier::Exact {
            // Exact tier: bit-identical to the pre-optimisation reference
            // search (given a budget large enough for the reference to
            // finish too — it explores at least as many nodes).
            let reference = problem.clone().with_node_limit(2_000_000).solve_reference();
            if let Ok(reference) = reference {
                prop_assert_eq!(&anytime.selected, &reference.selected);
                prop_assert_eq!(&anytime.choices, &reference.choices);
                prop_assert_eq!(&anytime.finish_us, &reference.finish_us);
                prop_assert_eq!(anytime.violations, reference.violations);
                prop_assert!(
                    anytime.total_cost.to_bits() == reference.total_cost.to_bits(),
                    "exact-tier cost must be bit-identical to the reference"
                );
            }
        }
    }

    /// Plane-routed energy metering is bit-identical to the retained
    /// reference path over random interleavings of busy/idle/transition
    /// samples: totals, activity-kind breakdowns and cluster breakdowns.
    #[test]
    fn plane_routed_energy_metering_matches_the_reference_path(
        samples in proptest::collection::vec(
            (0usize..17, 0u64..3, 0u64..2_000_000),
            1..60
        ),
    ) {
        use std::sync::Arc;
        let platform = Platform::exynos_5410();
        let plane = Arc::new(DvfsLadder::for_platform(&platform));
        let mut routed = EnergyMeter::with_plane(&platform, Arc::clone(&plane));
        let mut reference = EnergyMeter::new(&platform);
        for (cfg_idx, kind, duration_us) in samples {
            let cfg = platform.configs()[cfg_idx % platform.configs().len()];
            let duration = TimeUs::from_micros(duration_us);
            match kind {
                0 => {
                    let activity = if duration_us % 2 == 0 {
                        ActivityKind::UsefulWork
                    } else {
                        ActivityKind::SpeculativeWaste
                    };
                    routed.record_busy(&cfg, duration, activity);
                    reference.record_busy_reference(&cfg, duration, activity);
                }
                1 => {
                    routed.record_idle(&cfg, duration);
                    reference.record_idle_reference(&cfg, duration);
                }
                _ => {
                    routed.record_transition(&cfg, duration);
                    reference.record_transition_reference(&cfg, duration);
                }
            }
        }
        prop_assert!(
            routed.total().as_microjoules().to_bits()
                == reference.total().as_microjoules().to_bits(),
            "total energy drifted: {} vs {}",
            routed.total().as_microjoules(),
            reference.total().as_microjoules()
        );
        for kind in ActivityKind::ALL {
            prop_assert!(
                routed.for_activity(kind).as_microjoules().to_bits()
                    == reference.for_activity(kind).as_microjoules().to_bits(),
                "activity {:?} drifted", kind
            );
        }
        for cluster in platform.clusters() {
            let kind = cluster.core_kind();
            prop_assert!(
                routed.for_cluster(kind).as_microjoules().to_bits()
                    == reference.for_cluster(kind).as_microjoules().to_bits(),
                "cluster {:?} drifted", kind
            );
        }
        prop_assert_eq!(routed.busy_time(), reference.busy_time());
        prop_assert_eq!(routed.idle_time(), reference.idle_time());
    }
}

/// Exhaustive energy-identity check: every configuration of both modelled
/// platforms × a duration grid, for busy (both attributions), idle and
/// transition samples — the plane-routed meter must reproduce the reference
/// derivation bit for bit. This is the lockdown that lets the execution
/// engine meter through the frozen power plane without behavioural drift.
#[test]
fn energy_meter_plane_is_exhaustively_bit_identical_to_the_reference() {
    use std::sync::Arc;
    let duration_grid_us = [1u64, 137, 1_000, 33_000, 200_000, 3_000_000];
    for platform in [Platform::exynos_5410(), Platform::tx2_parker()] {
        let plane = Arc::new(DvfsLadder::for_platform(&platform));
        let mut routed = EnergyMeter::with_plane(&platform, Arc::clone(&plane));
        let mut reference = EnergyMeter::new(&platform);
        for cfg in platform.configs() {
            for &us in &duration_grid_us {
                let d = TimeUs::from_micros(us);
                routed.record_busy(cfg, d, ActivityKind::UsefulWork);
                reference.record_busy_reference(cfg, d, ActivityKind::UsefulWork);
                routed.record_busy(cfg, d, ActivityKind::SpeculativeWaste);
                reference.record_busy_reference(cfg, d, ActivityKind::SpeculativeWaste);
                routed.record_idle(cfg, d);
                reference.record_idle_reference(cfg, d);
                routed.record_transition(cfg, d);
                reference.record_transition_reference(cfg, d);
                assert_eq!(
                    routed.total().as_microjoules().to_bits(),
                    reference.total().as_microjoules().to_bits(),
                    "total drifted on {} at ({cfg}, {us}us)",
                    platform.name()
                );
            }
        }
        for kind in ActivityKind::ALL {
            assert_eq!(
                routed.for_activity(kind).as_microjoules().to_bits(),
                reference.for_activity(kind).as_microjoules().to_bits(),
                "activity {kind:?} drifted on {}",
                platform.name()
            );
        }
        for cluster in platform.clusters() {
            let kind = cluster.core_kind();
            assert_eq!(
                routed.for_cluster(kind).as_microjoules().to_bits(),
                reference.for_cluster(kind).as_microjoules().to_bits(),
                "cluster {kind:?} drifted on {}",
                platform.name()
            );
        }
    }
}

/// The Fig. 2-like fixture of the solver's unit suite, checked end-to-end at
/// the workspace level: the optimised solver must reproduce the reference
/// schedule exactly (the `nodes_explored` diagnostic aside, every field of
/// the two `ScheduleSolution`s is equal).
#[test]
fn optimised_solver_matches_reference_on_fig2_fixture() {
    let items = vec![
        ScheduleItem {
            release_us: 0,
            deadline_us: 3_000_000,
            options: vec![
                ScheduleOption {
                    choice: 0,
                    duration_us: 2_500_000,
                    cost: 10.0,
                },
                ScheduleOption {
                    choice: 1,
                    duration_us: 1_000_000,
                    cost: 25.0,
                },
            ],
        },
        ScheduleItem {
            release_us: 500_000,
            deadline_us: 1_800_000,
            options: vec![
                ScheduleOption {
                    choice: 0,
                    duration_us: 1_500_000,
                    cost: 8.0,
                },
                ScheduleOption {
                    choice: 1,
                    duration_us: 700_000,
                    cost: 20.0,
                },
            ],
        },
    ];
    let problem = ScheduleProblem::new(0, items);
    let optimised = problem.solve().unwrap();
    let reference = problem.solve_reference().unwrap();
    assert_eq!(optimised.selected, reference.selected);
    assert_eq!(optimised.choices, reference.choices);
    assert_eq!(optimised.finish_us, reference.finish_us);
    assert_eq!(optimised.violations, reference.violations);
    assert_eq!(
        optimised.total_cost.to_bits(),
        reference.total_cost.to_bits()
    );
    assert!(optimised.nodes_explored <= reference.nodes_explored);
    assert_eq!(optimised.violations, 0, "the Fig. 2 window is feasible");
    assert_eq!(
        optimised.choices,
        vec![1, 1],
        "both events need their fast option"
    );
}

// ---------------------------------------------------------------------------
// Chaos tier: arbitrary fault schedules through the full PES replay. The
// fault plane is seeded and replayable, so every property here is
// deterministic run-to-run despite exercising random fault schedules.
// ---------------------------------------------------------------------------

mod chaos {
    use super::*;
    use std::sync::{Arc, OnceLock};

    use pes::acmp::DvfsLadder;
    use pes::core::{FaultConfig, FaultPlane, PesConfig, PesScheduler, RunReport};
    use pes::predictor::{LearnerConfig, Trainer, TrainingConfig};
    use pes::webrt::QosPolicy;
    use pes::workload::{AppCatalog, Trace, TraceGenerator, EVAL_SEED_BASE};

    /// The shared seeded session every chaos case replays: one trained
    /// scheduler, one trace, one fault-free baseline report. Built once —
    /// training dominates the cost of the whole module otherwise.
    struct Fixture {
        platform: pes::acmp::Platform,
        plane: Arc<DvfsLadder>,
        page: pes::dom::BuiltPage,
        trace: Trace,
        pes: PesScheduler,
        qos: QosPolicy,
        baseline: RunReport,
    }

    fn fixture() -> &'static Fixture {
        static FIXTURE: OnceLock<Fixture> = OnceLock::new();
        FIXTURE.get_or_init(|| {
            let catalog = AppCatalog::paper_suite();
            let platform = pes::acmp::Platform::exynos_5410();
            let plane = Arc::new(DvfsLadder::for_platform(&platform));
            let qos = QosPolicy::paper_defaults();
            let app = catalog.find("cnn").unwrap();
            let page = app.build_page();
            let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE + 1);
            let learner = Trainer::with_config(TrainingConfig {
                traces_per_app: 3,
                epochs: 25,
                ..Default::default()
            })
            .train_learner(&catalog, LearnerConfig::paper_defaults());
            let pes = PesScheduler::new(learner, PesConfig::paper_defaults());
            let baseline = pes.run_trace_with_plane(&platform, &plane, &page, &trace, &qos);
            Fixture {
                platform,
                plane,
                page,
                trace,
                pes,
                qos,
                baseline,
            }
        })
    }

    fn replay(faults: &FaultPlane) -> RunReport {
        let f = fixture();
        f.pes.run_trace_with_plane_and_faults(
            &f.platform,
            &f.plane,
            &f.page,
            &f.trace,
            &f.qos,
            faults,
        )
    }

    /// The internal-consistency contract every report must satisfy no
    /// matter what the fault plane injected.
    fn assert_report_consistent(report: &RunReport, trace_len: usize) {
        // Event accounting: every delivered event (after queue faults) has
        // exactly one QoS outcome.
        assert_eq!(
            report.events,
            trace_len + report.fault_injections.duplicated_events
                - report.fault_injections.dropped_events,
            "queue-fault accounting must reconcile with the replayed events"
        );
        assert_eq!(report.outcomes.len(), report.events);
        // Energy identity: the meter integrates each sample into exactly
        // one activity kind, so the breakdown sums to the session total.
        let breakdown: f64 = report
            .energy_breakdown
            .iter()
            .map(|(_, e)| e.as_microjoules())
            .sum();
        assert!(
            (breakdown - report.total_energy.as_microjoules()).abs() < 0.5,
            "energy breakdown must sum to the total ({breakdown:.3} vs {:.3} µJ)",
            report.total_energy.as_microjoules()
        );
        // Ladder accounting: optimizer rounds only ever land on
        // Exact/Anytime/Greedy — a starved solve degrades to the greedy
        // floor, never below it — and every observed round is a memo
        // lookup (errored solves may skip the observation, never add one).
        let solves =
            report.degradation.exact + report.degradation.anytime + report.degradation.greedy;
        assert!(
            solves <= report.solver_cache_hits + report.solver_cache_misses,
            "solve-ladder entries must map onto memo lookups"
        );
        assert_eq!(
            report.degradation.ondemand_floor, report.unprofiled_fallbacks,
            "the OndemandFloor count is the unprofiled-fallback count"
        );
        assert!(report.degradation.decisions() > 0);
    }

    proptest! {
        /// Chaos: an arbitrary fault schedule over every class at once
        /// never panics the replay, keeps the event and energy accounting
        /// internally consistent, and is deterministic — the same seeded
        /// plane replays to the bit.
        #[test]
        fn arbitrary_fault_schedules_replay_safely_and_deterministically(
            seed in 0u64..1_000_000_000,
            flip in 0.0f64..0.5,
            corrupt in 0.0f64..0.4,
            drift in 0.0f64..0.5,
            magnitude in 0.0f64..1.5,
            starvation in 0.0f64..1.0,
            rung_mask in 0u32..65_536,
            vsync in 0.0f64..0.4,
            dup in 0.0f64..0.3,
            drop in 0.0f64..0.3,
        ) {
            let faults = FaultPlane::new(FaultConfig {
                seed,
                prediction_flip: flip,
                confidence_corruption: corrupt,
                demand_drift: drift,
                drift_magnitude: magnitude,
                solver_starvation: starvation,
                rung_mask,
                vsync_delay: vsync,
                queue_duplicate: dup,
                queue_drop: drop,
            });
            let report = replay(&faults);
            assert_report_consistent(&report, fixture().trace.len());
            let again = replay(&faults);
            prop_assert_eq!(report.violations, again.violations);
            prop_assert_eq!(report.fault_injections, again.fault_injections);
            prop_assert_eq!(report.degradation, again.degradation);
            prop_assert!(
                report.total_energy.as_microjoules().to_bits()
                    == again.total_energy.as_microjoules().to_bits(),
                "a seeded fault plane must replay bit-identically"
            );
        }

        /// A zero-rate plane is inert regardless of its seed: the RNG
        /// stream is never drawn from, so the replay is bit-identical to
        /// the fault-free baseline.
        #[test]
        fn zero_rate_planes_are_bit_identical_to_the_baseline_for_any_seed(
            seed in 0u64..1_000_000_000,
        ) {
            let faults = FaultPlane::new(FaultConfig {
                seed,
                ..FaultConfig::disabled()
            });
            let report = replay(&faults);
            let base = &fixture().baseline;
            prop_assert_eq!(report.violations, base.violations);
            prop_assert_eq!(report.fault_injections.total(), 0);
            prop_assert_eq!(report.solver_cache_hits, base.solver_cache_hits);
            prop_assert!(
                report.total_energy.as_microjoules().to_bits()
                    == base.total_energy.as_microjoules().to_bits(),
                "an all-zero schedule must never perturb the replay"
            );
        }

        /// Bounded inflation for the vsync fault class: `commit` is pure
        /// QoS accounting, so each delayed frame can add at most one
        /// violation — with only vsync faults enabled, the violation count
        /// is bounded by the baseline plus the injection count.
        #[test]
        fn vsync_delays_inflate_violations_by_at_most_one_each(
            seed in 0u64..1_000_000_000,
            rate in 0.0f64..1.0,
        ) {
            let faults = FaultPlane::new(FaultConfig {
                seed,
                vsync_delay: rate,
                ..FaultConfig::disabled()
            });
            let report = replay(&faults);
            let base = &fixture().baseline;
            prop_assert_eq!(report.events, base.events, "vsync faults drop nothing");
            prop_assert!(
                report.violations <= base.violations + report.fault_injections.delayed_vsyncs,
                "violations {} exceed baseline {} + {} delayed frames",
                report.violations,
                base.violations,
                report.fault_injections.delayed_vsyncs
            );
            prop_assert!(report.violations + report.fault_injections.delayed_vsyncs >= base.violations,
                "a delayed frame can also only add violations, never remove more than itself");
        }
    }
}

// ---------------------------------------------------------------------------
// Fleet resilience tier: breaker determinism and admission liveness.
// ---------------------------------------------------------------------------

mod fleet_resilience {
    use super::*;

    use pes::schedulers::RoutedTier;
    use pes::sim::{
        fleet_admission_dry_run, BreakerConfig, BreakerState, CircuitBreaker, FleetConfig,
        FleetSpec, ShedPolicy,
    };

    fn breaker_config(
        window: usize,
        trip_threshold: usize,
        cooldown_batches: usize,
        close_after: usize,
    ) -> BreakerConfig {
        BreakerConfig {
            window,
            trip_threshold,
            cooldown_batches,
            probes: 2,
            close_after,
            open_tier: RoutedTier::Reactive,
        }
    }

    proptest! {
        /// A circuit breaker fed an arbitrary seeded chaos schedule of
        /// outcomes, probes and batch ticks is deterministic (same schedule,
        /// same state trajectory, bit for bit) and only ever takes legal
        /// transitions: Closed→Open, Open→HalfOpen, HalfOpen→Open and
        /// HalfOpen→Closed.
        #[test]
        fn breaker_is_deterministic_and_transitions_stay_legal(
            window in 1usize..=64,
            trip_threshold in 1usize..=16,
            cooldown_batches in 1usize..=4,
            close_after in 1usize..=4,
            ops in proptest::collection::vec((0u8..3, 0u8..2), 1..200),
        ) {
            let config = breaker_config(window, trip_threshold, cooldown_batches, close_after);
            let run = |ops: &[(u8, u8)]| {
                let mut breaker = CircuitBreaker::new(&config);
                let mut states = vec![breaker.state()];
                for &(kind, bad) in ops {
                    let bad = bad == 1;
                    match kind {
                        0 => breaker.record(bad),
                        1 => breaker.record_probe(bad),
                        _ => breaker.end_batch(),
                    }
                    states.push(breaker.state());
                }
                (breaker, states)
            };
            let (a, states_a) = run(&ops);
            let (b, states_b) = run(&ops);
            prop_assert_eq!(&a, &b, "breaker must replay deterministically");
            prop_assert_eq!(&states_a, &states_b);
            prop_assert_eq!(a.history_letters(), b.history_letters());
            for pair in states_a.windows(2) {
                let legal = matches!(
                    (pair[0], pair[1]),
                    (x, y) if x == y
                ) || matches!(
                    (pair[0], pair[1]),
                    (BreakerState::Closed, BreakerState::Open)
                        | (BreakerState::Open, BreakerState::HalfOpen)
                        | (BreakerState::HalfOpen, BreakerState::Open)
                        | (BreakerState::HalfOpen, BreakerState::Closed)
                );
                prop_assert!(legal, "illegal transition {:?} -> {:?}", pair[0], pair[1]);
            }
        }

        /// Recovery liveness: however a breaker got tripped, a cooldown
        /// followed by clean probes always walks it Open → HalfOpen →
        /// Closed with a cleared window.
        #[test]
        fn clean_probes_always_close_a_tripped_breaker(
            window in 1usize..=64,
            trip_threshold in 1usize..=16,
            cooldown_batches in 1usize..=4,
            close_after in 1usize..=4,
        ) {
            let trip_threshold = trip_threshold.min(window);
            let config = breaker_config(window, trip_threshold, cooldown_batches, close_after);
            let mut breaker = CircuitBreaker::new(&config);
            for _ in 0..trip_threshold {
                breaker.record(true);
            }
            prop_assert_eq!(breaker.state(), BreakerState::Open);
            for _ in 0..cooldown_batches {
                prop_assert_eq!(breaker.state(), BreakerState::Open);
                breaker.end_batch();
            }
            prop_assert_eq!(breaker.state(), BreakerState::HalfOpen);
            for _ in 0..close_after {
                prop_assert_eq!(breaker.state(), BreakerState::HalfOpen);
                breaker.record_probe(false);
            }
            prop_assert_eq!(breaker.state(), BreakerState::Closed);
            prop_assert_eq!(breaker.bad_in_window(), 0, "window cleared on close");
            prop_assert_eq!(breaker.history_letters(), "OHC");
        }

        /// Admission liveness: the full driver loop (arrivals, storms,
        /// bounded queue, shedding, batched admission) terminates for any
        /// spec/config, never deadlocks, conserves every session (served or
        /// deliberately shed, nothing lost), keeps the post-shed queue
        /// within its capacity, and is deterministic.
        #[test]
        fn fleet_admission_never_deadlocks_and_conserves_sessions(
            sessions in 0usize..4_000,
            seed in 0u64..u64::MAX,
            arrivals_per_step in 0usize..32,
            storm_every in 0usize..12,
            storm_arrivals in 0usize..256,
            batch_size in 0usize..64,
            queue_capacity in 0usize..128,
            oldest_first in 0u8..2,
        ) {
            let spec = FleetSpec {
                sessions,
                seed,
                arrivals_per_step,
                storm_every,
                storm_arrivals,
                max_events_per_session: 0,
                scenario_cycle: 0,
            };
            let config = FleetConfig {
                batch_size,
                queue_capacity,
                shed: if oldest_first == 0 {
                    ShedPolicy::OldestFirst
                } else {
                    ShedPolicy::LowestPriorityFirst
                },
                ..FleetConfig::default()
            };
            let report = fleet_admission_dry_run(&spec, &config);
            prop_assert_eq!(
                report.completed + report.shed,
                sessions,
                "every session is either served or deliberately shed"
            );
            prop_assert!(report.peak_queue <= queue_capacity.max(1));
            prop_assert_eq!(
                report.shed_by_priority.iter().sum::<usize>(),
                report.shed
            );
            prop_assert!(report.is_clean(), "clean executor never quarantines");
            let again = fleet_admission_dry_run(&spec, &config);
            prop_assert_eq!(report, again, "admission arithmetic is deterministic");
        }
    }
}

/// PR 8 — the batched + SIMD prediction plane. The packed f32 kernels (and
/// their `core::simd` twins, when the `portable-simd` feature is on) are
/// locked down differentially against the retained per-class scalar paths:
/// one session at a time must equal the whole-batch matrix pass bit for bit,
/// and the f32 re-layout must reproduce the f64 reference argmax whenever
/// the decision margin is clear of rounding noise.
mod prediction_plane {
    use proptest::prelude::*;

    use pes::dom::{EventType, EventTypeSet};
    use pes::predictor::{
        LogisticModel, OneVsRestClassifier, PackedModel, QuantizedModel, FEATURE_DIM,
    };

    const NUM_CLASSES: usize = EventType::ALL.len();

    fn classifier(weights: &[f64], biases: &[f64]) -> OneVsRestClassifier {
        let models = (0..NUM_CLASSES)
            .map(|c| {
                LogisticModel::from_coefficients(
                    weights[c * FEATURE_DIM..(c + 1) * FEATURE_DIM].to_vec(),
                    biases[c],
                )
            })
            .collect();
        OneVsRestClassifier::from_models(models, FEATURE_DIM)
    }

    fn mask_from_bits(bits: u8) -> EventTypeSet {
        let mut set = EventTypeSet::EMPTY;
        for (i, &event) in EventType::ALL.iter().enumerate() {
            if bits & (1 << i) != 0 {
                set.insert(event);
            }
        }
        set
    }

    fn weights_strategy() -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(
            -3.0f64..3.0,
            NUM_CLASSES * FEATURE_DIM..NUM_CLASSES * FEATURE_DIM + 1,
        )
    }

    fn biases_strategy() -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(-2.0f64..2.0, NUM_CLASSES..NUM_CLASSES + 1)
    }

    /// Batch rows: a feature vector plus a raw LNES bitmask (0 = empty set,
    /// which the plane must treat as "all classes allowed"). Length 0..=8
    /// covers the empty batch and the single-session batch.
    fn batch_strategy() -> impl Strategy<Value = Vec<(Vec<f64>, u8)>> {
        proptest::collection::vec(
            (
                proptest::collection::vec(-10.0f64..10.0, FEATURE_DIM..FEATURE_DIM + 1),
                0u8..128,
            ),
            0..9,
        )
    }

    proptest! {
        /// `predict_many` is the single-session packed path, bit for bit:
        /// identical class decisions AND identical f32 confidence bits for
        /// every row of every batch (including empty and length-1 batches).
        #[test]
        fn predict_many_is_bitwise_equal_to_per_row_packed(
            weights in weights_strategy(),
            biases in biases_strategy(),
            batch in batch_strategy(),
        ) {
            let packed = PackedModel::from_classifier(&classifier(&weights, &biases));

            let mut rows = Vec::new();
            let mut masks = Vec::new();
            for (features, bits) in &batch {
                packed.pad_features_append(features, &mut rows);
                masks.push(mask_from_bits(*bits));
            }

            let mut many = Vec::new();
            packed.predict_many(&rows, &masks, &mut many);
            prop_assert_eq!(many.len(), batch.len());

            let mut padded = Vec::new();
            for (row, ((features, _), mask)) in batch.iter().zip(&masks).enumerate() {
                packed.pad_features(features, &mut padded);
                let (single_event, single_logit) = packed.predict_masked_raw(&padded, *mask);
                let (batch_event, batch_logit) = many[row];
                prop_assert_eq!(single_event, batch_event, "row {} class decision", row);
                prop_assert_eq!(
                    single_logit.to_bits(),
                    batch_logit.to_bits(),
                    "row {} score bits",
                    row
                );
                // The sigmoid-squashed single path agrees on the decision —
                // squashing is strictly monotonic.
                let (conf_event, _) = packed.predict_masked(&padded, *mask);
                prop_assert_eq!(single_event, conf_event);
            }
        }

        /// The f32 re-layout agrees with the retained f64 reference whenever
        /// the top-two raw-score margin is clear of f32 rounding noise.
        #[test]
        fn packed_decision_matches_f64_reference_on_clear_margins(
            weights in weights_strategy(),
            biases in biases_strategy(),
            features in proptest::collection::vec(-10.0f64..10.0, FEATURE_DIM..FEATURE_DIM + 1),
            bits in 0u8..128,
        ) {
            let reference = classifier(&weights, &biases);
            let packed = PackedModel::from_classifier(&reference);
            let mask = mask_from_bits(bits);

            // f64 reference probabilities, restricted the same way the
            // reference path restricts them (empty mask falls back to all
            // classes). The margin must be measured in probability space:
            // the reference argmaxes sigmoid(z), which saturates to exact
            // 1.0 for large z and then resolves the tie positionally, while
            // the packed plane argmaxes raw scores.
            let effective = if mask.is_empty() { EventTypeSet::ALL } else { mask };
            let mut probs: Vec<f64> = Vec::new();
            for (c, model) in reference.models().iter().enumerate() {
                if effective.contains(EventType::ALL[c]) {
                    probs.push(model.predict_proba(&features));
                }
            }
            let mut sorted = probs.clone();
            sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
            let margin = if sorted.len() >= 2 { sorted[0] - sorted[1] } else { f64::MAX };
            if margin <= 1e-2 {
                // Saturated or near-tied probabilities — the winner is
                // decided by tie-break position or rounding noise, so the
                // two layouts may legitimately differ. Vacuous case.
                continue;
            }

            let (ref_event, _) = reference.predict_masked(&features, mask);
            let mut padded = Vec::new();
            packed.pad_features(&features, &mut padded);
            let (packed_event, _) = packed.predict_masked(&padded, mask);
            prop_assert_eq!(ref_event, packed_event);
        }

        /// Quantised i8 raw scores stay within the analytic rounding bound
        /// of the f32 scores: per-class error ≤ 0.5 · scale · Σ|x| plus a
        /// small accumulation slack.
        #[test]
        fn quantised_scores_within_rounding_bound(
            weights in weights_strategy(),
            biases in biases_strategy(),
            features in proptest::collection::vec(-10.0f64..10.0, FEATURE_DIM..FEATURE_DIM + 1),
        ) {
            let packed = PackedModel::from_classifier(&classifier(&weights, &biases));
            let quantised = QuantizedModel::from_packed(&packed);

            let mut padded = Vec::new();
            packed.pad_features(&features, &mut padded);
            let exact = packed.scores(&padded);
            let approx = quantised.scores(&padded);

            let abs_sum: f32 = padded.iter().map(|x| x.abs()).sum();
            for c in 0..NUM_CLASSES {
                let bound = 0.5 * quantised.scales()[c] * abs_sum * 1.001 + 1e-4;
                prop_assert!(
                    (exact[c] - approx[c]).abs() <= bound,
                    "class {}: |{} - {}| > {}",
                    c,
                    exact[c],
                    approx[c],
                    bound
                );
            }
        }
    }
}

/// PR 9 — the fleet-scale shared solve memo. The generation is a read-only
/// mirror of the per-replay ring: a shared hit must reproduce the cached
/// outcome *and* the ring's own bookkeeping, so every aggregate of a
/// shared-memo fleet run is bitwise identical to the same run with the
/// generation disabled — for any batch size, thread count, shard count,
/// scenario cycle and session count, including the empty fleet (nothing to
/// publish) and the single-session fleet (publish with no possible reuse).
mod shared_memo {
    use std::sync::{Arc, OnceLock};

    use proptest::prelude::*;

    use pes::acmp::{DvfsLadder, Platform};
    use pes::core::{FaultPlane, WatchdogConfig};
    use pes::predictor::{LearnerConfig, Trainer, TrainingConfig};
    use pes::sim::{
        run_fleet, CostRouteConfig, ExperimentContext, FleetConfig, FleetRunReport, FleetSpec,
        ScenarioCache,
    };
    use pes::webrt::QosPolicy;
    use pes::workload::AppCatalog;

    /// One cheap context for the whole module; training dominates the cost
    /// of every case otherwise. Clean fault plane: the differential is about
    /// the memo mirror, not the degradation ladder.
    fn ctx() -> &'static ExperimentContext {
        static CTX: OnceLock<ExperimentContext> = OnceLock::new();
        CTX.get_or_init(|| {
            let catalog = AppCatalog::paper_suite();
            let platform = Platform::exynos_5410();
            let power_plane = Arc::new(DvfsLadder::for_platform(&platform));
            ExperimentContext {
                platform,
                power_plane,
                qos: QosPolicy::paper_defaults(),
                learner: Trainer::with_config(TrainingConfig {
                    traces_per_app: 3,
                    epochs: 25,
                    ..Default::default()
                })
                .train_learner(&catalog, LearnerConfig::paper_defaults()),
                catalog,
                traces_per_app: 1,
                scenarios: ScenarioCache::build(&AppCatalog::paper_suite(), 2),
                faults: FaultPlane::none(),
            }
        })
    }

    fn assert_bitwise_equal(shared: &FleetRunReport, solo: &FleetRunReport) {
        assert_eq!(
            shared.energy_bits(),
            solo.energy_bits(),
            "energy must match to the bit"
        );
        assert_eq!(shared.violations, solo.violations);
        assert_eq!(shared.events, solo.events);
        assert_eq!(shared.completed, solo.completed);
        assert_eq!(shared.shed, solo.shed);
        assert_eq!(shared.shed_by_priority, solo.shed_by_priority);
        assert_eq!(shared.retries, solo.retries);
        assert_eq!(shared.steps, solo.steps);
        assert_eq!(shared.batches, solo.batches);
        assert_eq!(shared.peak_queue, solo.peak_queue);
        assert_eq!(shared.degradation, solo.degradation);
        assert_eq!(shared.injections, solo.injections);
        assert_eq!(shared.predicted_openings, solo.predicted_openings);
        assert_eq!(shared.watchdog_trips, solo.watchdog_trips);
        assert_eq!(shared.breaker_histories, solo.breaker_histories);
        assert_eq!(shared.breaker_finals, solo.breaker_finals);
        assert_eq!(shared.failures.len(), solo.failures.len());
        // The mirror contract proper: the per-replay solver counters the
        // generation must never perturb.
        assert_eq!(shared.solver_nodes, solo.solver_nodes);
        assert_eq!(shared.memo_hits, solo.memo_hits);
        assert_eq!(shared.memo_misses, solo.memo_misses);
        assert_eq!(shared.routed_entries, solo.routed_entries);
    }

    proptest! {
        #[test]
        fn shared_memo_fleet_is_bitwise_identical_to_per_replay(
            sessions in 0usize..=5,
            seed in 0u64..u64::MAX,
            batch_size in 1usize..=4,
            threads in 1usize..=3,
            shards in 1usize..=3,
            scenario_cycle in 0usize..=3,
            route_flag in 0u8..2,
        ) {
            let spec = FleetSpec {
                sessions,
                seed,
                arrivals_per_step: 3,
                storm_every: 0,
                storm_arrivals: 0,
                max_events_per_session: 6,
                scenario_cycle,
            };
            let shared_cfg = FleetConfig {
                batch_size,
                queue_capacity: 16,
                threads,
                shards,
                watchdog: WatchdogConfig::disabled(),
                cost_routing: CostRouteConfig {
                    enabled: route_flag == 1,
                    ..CostRouteConfig::default()
                },
                ..FleetConfig::default()
            };
            let solo_cfg = FleetConfig {
                shared_memo: false,
                ..shared_cfg.clone()
            };
            let shared = run_fleet(ctx(), &spec, &shared_cfg);
            let solo = run_fleet(ctx(), &spec, &solo_cfg);
            assert_bitwise_equal(&shared, &solo);
            assert_eq!(
                (solo.shared_hits, solo.shared_lookups),
                (0, 0),
                "a per-replay run must never consult the generation"
            );
            prop_assert!(
                shared.shared_hits <= shared.shared_lookups,
                "hits cannot exceed lookups"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Frame-scheduler / frame-ledger tier: the PR-10 engine refactor must be
// bit-identical to the retained reference accounting path.
// ---------------------------------------------------------------------------

mod frame_ledger {
    use super::*;

    use pes::core::{FaultConfig, FaultPlane};
    use pes::webrt::{EventId, ExecutionEngine, ExecutionRecord, QosPolicy, WebEvent};

    const EVENT_TYPES: [EventType; 5] = [
        EventType::Load,
        EventType::Click,
        EventType::Scroll,
        EventType::TouchMove,
        EventType::Navigate,
    ];

    fn event(id: u64, ty_idx: usize, arrival_us: u64, mcycles: u64) -> WebEvent {
        WebEvent::new(
            EventId::new(id),
            EVENT_TYPES[ty_idx % EVENT_TYPES.len()],
            None,
            TimeUs::from_micros(arrival_us),
            CpuDemand::new(
                TimeUs::from_millis(5),
                CpuCycles::new((1 + mcycles) * 1_000_000),
            ),
        )
    }

    /// Drives `fast` (ledger + feedback scheduler, the default) and
    /// `reference` (`with_reference_accounting`) through the same operation
    /// sequence and asserts every observable agrees bit for bit — including
    /// *mid-replay*, while samples are still deferred in the ledger.
    fn assert_engines_agree(fast: &ExecutionEngine<'_>, reference: &ExecutionEngine<'_>) {
        assert_eq!(
            fast.total_energy().as_microjoules().to_bits(),
            reference.total_energy().as_microjoules().to_bits(),
            "total energy drifted"
        );
        for kind in ActivityKind::ALL {
            assert_eq!(
                fast.energy_for(kind).as_microjoules().to_bits(),
                reference.energy_for(kind).as_microjoules().to_bits(),
                "activity {kind:?} drifted"
            );
        }
        assert_eq!(
            fast.waste_fraction().to_bits(),
            reference.waste_fraction().to_bits(),
            "waste fraction drifted"
        );
        assert_eq!(fast.violations(), reference.violations());
        assert_eq!(fast.outcomes(), reference.outcomes());
        assert_eq!(fast.cpu_free_at(), reference.cpu_free_at());
        assert_eq!(fast.current_config(), reference.current_config());
    }

    proptest! {
        /// The tentpole lockdown: over arbitrary interleavings of idle /
        /// switch / execute / commit / speculate / squash operations —
        /// with late-vsync fault injections perturbing commit times through
        /// the real `FaultPlane` — the ledger engine and the reference
        /// engine report bit-identical energy (total, per-activity, waste
        /// fraction), identical QoS outcomes and identical violation
        /// counts, at every step, not just at the end.
        #[test]
        fn ledger_engine_is_bit_identical_to_reference_accounting(
            ops in proptest::collection::vec(
                (0u8..6, 0usize..17, 0u64..200, 0usize..5, 1u64..400),
                1..50
            ),
            fault_seed in 0u64..1_000_000_000,
            vsync_rate in 0.0f64..0.6,
        ) {
            let platform = Platform::exynos_5410();
            let plane = std::sync::Arc::new(DvfsLadder::for_platform(&platform));
            let qos = QosPolicy::paper_defaults();
            let mut fast =
                ExecutionEngine::with_plane(&platform, qos, std::sync::Arc::clone(&plane));
            let mut reference =
                ExecutionEngine::with_plane(&platform, qos, std::sync::Arc::clone(&plane))
                    .with_reference_accounting();
            let faults = FaultPlane::new(FaultConfig {
                seed: fault_seed,
                vsync_delay: vsync_rate,
                ..FaultConfig::disabled()
            });
            // One session per engine, seeded identically: both draw the
            // same delay stream, so commits are perturbed in lockstep.
            let mut fast_fs = faults.session();
            let mut ref_fs = faults.session();

            let mut pending: Vec<(WebEvent, ExecutionRecord)> = Vec::new();
            let mut next_id = 0u64;
            for (op, cfg_idx, delta_ms, ty_idx, mcycles) in ops {
                let cfg = platform.configs()[cfg_idx % platform.configs().len()];
                match op {
                    // Idle forward from the CPU-free horizon.
                    0 => {
                        let until = fast.cpu_free_at() + TimeUs::from_millis(delta_ms);
                        fast.idle_until(until);
                        reference.idle_until(until);
                    }
                    // DVFS / migration switch.
                    1 => {
                        fast.switch_config(&cfg);
                        reference.switch_config(&cfg);
                    }
                    // Execute + commit immediately (the reactive shape),
                    // with the commit time possibly pushed by a late-vsync
                    // fault exactly as the proactive runtime does it.
                    2 | 3 => {
                        let arrival = fast.cpu_free_at().as_micros() + delta_ms * 1_000;
                        let ev = event(next_id, ty_idx, arrival, mcycles);
                        next_id += 1;
                        let a = fast.execute_event(&ev, &cfg, false);
                        let b = reference.execute_event(&ev, &cfg, false);
                        prop_assert_eq!(a, b, "execution records diverged");
                        let period = *fast.vsync();
                        let ready_a = fast_fs.delay_vsync(a.frame_ready_at, period.period());
                        let ready_b = ref_fs.delay_vsync(b.frame_ready_at, period.period());
                        prop_assert_eq!(ready_a, ready_b, "fault streams diverged");
                        let oa = fast.commit(&ev, ready_a);
                        let ob = reference.commit(&ev, ready_b);
                        prop_assert_eq!(oa, ob, "outcomes diverged");
                    }
                    // Speculative execution: the frame parks in the PFB.
                    4 => {
                        let arrival = fast.cpu_free_at().as_micros() + 50_000;
                        let ev = event(next_id, ty_idx, arrival, mcycles);
                        next_id += 1;
                        let a = fast.execute_event(&ev, &cfg, true);
                        let b = reference.execute_event(&ev, &cfg, true);
                        prop_assert_eq!(a, b);
                        pending.push((ev, a));
                    }
                    // Resolve one parked frame: commit it or squash it.
                    _ => {
                        if let Some((ev, record)) = pending.pop() {
                            if delta_ms % 2 == 0 {
                                let oa = fast.commit(&ev, record.frame_ready_at);
                                let ob = reference.commit(&ev, record.frame_ready_at);
                                prop_assert_eq!(oa, ob);
                            } else {
                                fast.account_squashed_frame(&record);
                                reference.account_squashed_frame(&record);
                            }
                        }
                    }
                }
                assert_engines_agree(&fast, &reference);
            }
            // Telemetry sanity: every prediction the scheduler served was
            // either a feedback walk or a cold fallback.
            let frames = fast.frame_scheduler();
            prop_assert_eq!(
                frames.feedback_hits() + frames.cold_predictions(),
                fast.outcomes().len() as u64
            );
        }
    }

    /// Engine-level cold-path coverage: warmup, deep speculative backlog,
    /// and a refresh-interval change mid-replay all stay in lockstep with
    /// the reference engine.
    #[test]
    fn engine_cold_paths_stay_in_lockstep_with_the_reference() {
        let platform = Platform::exynos_5410();
        let plane = std::sync::Arc::new(DvfsLadder::for_platform(&platform));
        let qos = QosPolicy::paper_defaults();
        let mut fast = ExecutionEngine::with_plane(&platform, qos, std::sync::Arc::clone(&plane));
        let mut reference =
            ExecutionEngine::with_plane(&platform, qos, plane).with_reference_accounting();

        // (1) Warmup: the very first commit has no presentation feedback.
        let ev = event(0, 1, 10_000, 80);
        let a = fast.execute_event(&ev, &platform.max_performance_config(), false);
        let b = reference.execute_event(&ev, &platform.max_performance_config(), false);
        assert_eq!(
            fast.commit(&ev, a.frame_ready_at),
            reference.commit(&ev, b.frame_ready_at)
        );
        assert_engines_agree(&fast, &reference);
        assert_eq!(fast.frame_scheduler().cold_predictions(), 1);

        // (2) Saturated pending-commit backlog: many speculative frames
        // before the next commit seed the walk far ahead.
        let mut parked = Vec::new();
        for i in 0..12 {
            let ev = event(100 + i, (i % 5) as usize, 0, 30 + i);
            let cfg = platform.configs()[(i as usize) % platform.configs().len()];
            let ra = fast.execute_event(&ev, &cfg, true);
            let rb = reference.execute_event(&ev, &cfg, true);
            assert_eq!(ra, rb);
            parked.push((ev, ra));
        }
        assert_eq!(fast.frame_scheduler().pending_commits(), 12);
        for (ev, record) in parked {
            assert_eq!(
                fast.commit(&ev, record.frame_ready_at),
                reference.commit(&ev, record.frame_ready_at)
            );
            assert_engines_agree(&fast, &reference);
        }

        // (3) Refresh-interval change mid-replay: move both engines to a
        // 120 Hz panel; the scheduler must drop its feedback and re-seed.
        use pes::webrt::VsyncClock;
        fast.set_vsync(VsyncClock::with_period(TimeUs::from_micros(8_333)));
        reference.set_vsync(VsyncClock::with_period(TimeUs::from_micros(8_333)));
        assert!(fast.frame_scheduler().feedback().is_none());
        let cold_before = fast.frame_scheduler().cold_predictions();
        // Light, dense events: consecutive commits land within the walk
        // bound, so only the first post-switch prediction resolves cold.
        for i in 0..4 {
            let ev = event(200 + i, 2, fast.cpu_free_at().as_micros() + 1_000, 2);
            let ra = fast.execute_event(&ev, &platform.max_performance_config(), false);
            let rb = reference.execute_event(&ev, &platform.max_performance_config(), false);
            assert_eq!(ra, rb);
            assert_eq!(
                fast.commit(&ev, ra.frame_ready_at),
                reference.commit(&ev, rb.frame_ready_at)
            );
            assert_engines_agree(&fast, &reference);
        }
        assert_eq!(fast.frame_scheduler().cold_predictions(), cold_before + 1);
    }
}
