//! Cross-crate integration tests: the full PES stack (workload → predictor →
//! optimizer → speculative execution → metrics) against the reactive
//! baselines.

use std::sync::Arc;

use pes::acmp::{DvfsLadder, DvfsModel, Platform};
use pes::core::{FaultConfig, FaultPlane, OracleScheduler, PesConfig, PesScheduler};
use pes::predictor::{LearnerConfig, Trainer, TrainingConfig};
use pes::schedulers::{DemandProfiler, Ebs, InteractiveGovernor, OndemandGovernor};
use pes::sim::{classify_events, distribution, run_reactive, ExperimentContext, ScenarioCache};
use pes::webrt::{ExecutionEngine, QosPolicy};
use pes::workload::{AppCatalog, TraceGenerator, EVAL_SEED_BASE};

fn quick_learner(catalog: &AppCatalog) -> pes::predictor::EventSequenceLearner {
    Trainer::with_config(TrainingConfig {
        traces_per_app: 3,
        epochs: 25,
        ..Default::default()
    })
    .train_learner(catalog, LearnerConfig::paper_defaults())
}

#[test]
fn pes_improves_on_ebs_for_energy_and_qos_across_several_apps() {
    let catalog = AppCatalog::paper_suite();
    let platform = Platform::exynos_5410();
    let qos = QosPolicy::paper_defaults();
    let learner = quick_learner(&catalog);
    let pes = PesScheduler::new(learner, PesConfig::paper_defaults());
    let generator = TraceGenerator::new();

    let mut pes_energy = 0.0;
    let mut ebs_energy = 0.0;
    let mut interactive_energy = 0.0;
    let mut pes_violations = 0usize;
    let mut ebs_violations = 0usize;
    let mut events = 0usize;

    for app_name in ["cnn", "bbc", "ebay", "sina", "youtube"] {
        let app = catalog.find(app_name).unwrap();
        let page = app.build_page();
        for seed in 0..2 {
            let trace = generator.generate(app, &page, EVAL_SEED_BASE + seed);
            events += trace.len();
            let i = run_reactive(&platform, &trace, &mut InteractiveGovernor::new(), &qos);
            interactive_energy += i.total_energy.as_millijoules();
            let e = run_reactive(&platform, &trace, &mut Ebs::new(&platform), &qos);
            ebs_energy += e.total_energy.as_millijoules();
            ebs_violations += e.violations();
            let p = pes.run_trace(&platform, &page, &trace, &qos);
            pes_energy += p.total_energy.as_millijoules();
            pes_violations += p.violations;
        }
    }

    assert!(
        events > 100,
        "enough events to make the comparison meaningful"
    );
    assert!(
        pes_energy < ebs_energy,
        "PES should use less energy than EBS ({pes_energy:.0} vs {ebs_energy:.0} mJ)"
    );
    assert!(
        pes_energy < interactive_energy,
        "PES should use less energy than Interactive"
    );
    assert!(
        ebs_energy < interactive_energy,
        "EBS should use less energy than Interactive"
    );
    assert!(
        pes_violations < ebs_violations,
        "PES should violate QoS less often than EBS ({pes_violations} vs {ebs_violations})"
    );
}

#[test]
fn oracle_dominates_every_policy_it_is_compared_against() {
    let catalog = AppCatalog::paper_suite();
    let platform = Platform::exynos_5410();
    let qos = QosPolicy::paper_defaults();
    let learner = quick_learner(&catalog);
    let pes = PesScheduler::new(learner, PesConfig::paper_defaults());
    let oracle = OracleScheduler::new();
    let generator = TraceGenerator::new();

    let app = catalog.find("espn").unwrap();
    let page = app.build_page();
    let trace = generator.generate(app, &page, EVAL_SEED_BASE + 21);

    let pes_report = pes.run_trace(&platform, &page, &trace, &qos);
    let oracle_report = oracle.run_trace(&platform, &page, &trace, &qos);

    assert!(oracle_report.violations <= pes_report.violations);
    assert!(
        oracle_report.total_energy.as_microjoules()
            <= pes_report.total_energy.as_microjoules() * 1.05
    );
    assert_eq!(oracle_report.mispredictions, 0);
    // The oracle's "prediction" is the actual future, so its online accuracy
    // is perfect whenever it speculates at all.
    assert!(oracle_report.predictions == 0 || oracle_report.prediction_accuracy() > 0.999);
}

#[test]
fn event_type_distribution_matches_the_motivation_narrative() {
    // Under EBS a meaningful fraction of events is Type I/II/III, and Type IV
    // (benign) events dominate — the Sec. 4.3 observation that motivates a
    // proactive scheduler.
    let catalog = AppCatalog::paper_suite();
    let platform = Platform::exynos_5410();
    let dvfs = pes::acmp::DvfsModel::new(&platform);
    let qos = QosPolicy::paper_defaults();
    let generator = TraceGenerator::new();
    let mut classes = Vec::new();
    for app in catalog.seen_apps() {
        let page = app.build_page();
        let trace = generator.generate(app, &page, EVAL_SEED_BASE + 33);
        let report = run_reactive(&platform, &trace, &mut Ebs::new(&platform), &qos);
        classes.extend(classify_events(&report, trace.events(), &dvfs, &qos));
    }
    let dist = distribution(&classes);
    assert!(dist.qos_missing() > 0.03, "{dist:?}");
    assert!(dist.qos_missing() < 0.5, "{dist:?}");
    assert!(dist.type_iv > 0.4, "{dist:?}");
}

#[test]
fn ondemand_trades_qos_for_energy_relative_to_interactive() {
    let catalog = AppCatalog::paper_suite();
    let platform = Platform::exynos_5410();
    let qos = QosPolicy::paper_defaults();
    let generator = TraceGenerator::new();
    let mut ondemand_energy = 0.0;
    let mut interactive_energy = 0.0;
    let mut ondemand_violations = 0usize;
    let mut interactive_violations = 0usize;
    for app_name in ["cnn", "msn", "taobao"] {
        let app = catalog.find(app_name).unwrap();
        let page = app.build_page();
        let trace = generator.generate(app, &page, EVAL_SEED_BASE + 2);
        let od = run_reactive(&platform, &trace, &mut OndemandGovernor::new(), &qos);
        let ia = run_reactive(&platform, &trace, &mut InteractiveGovernor::new(), &qos);
        ondemand_energy += od.total_energy.as_millijoules();
        interactive_energy += ia.total_energy.as_millijoules();
        ondemand_violations += od.violations();
        interactive_violations += ia.violations();
    }
    assert!(ondemand_energy < interactive_energy);
    assert!(ondemand_violations >= interactive_violations);
}

// ---------------------------------------------------------------------------
// Golden tier: the differential/golden lockdown of the event fast path.
// ---------------------------------------------------------------------------

/// Golden-trace differential: the ladder-backed EBS decisions must be
/// byte-identical to the pre-refactor per-call DVFS math. The reference side
/// replays the same seeded session with the retained
/// `cheapest_config_within_reference` selector (the exact pre-ladder code),
/// mirroring `run_reactive`'s engine loop step for step.
#[test]
fn ladder_backed_ebs_decisions_are_byte_identical_to_the_pre_refactor_model() {
    let catalog = AppCatalog::paper_suite();
    let platform = Platform::exynos_5410();
    let qos = QosPolicy::paper_defaults();
    let app = catalog.find("cnn").unwrap();
    let page = app.build_page();
    let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE + 4);

    let fast = run_reactive(&platform, &trace, &mut Ebs::new(&platform), &qos);

    let mut engine = ExecutionEngine::new(&platform, qos);
    let dvfs = DvfsModel::new(&platform);
    let mut profiler = DemandProfiler::new(&platform);
    let mut reference_configs = Vec::with_capacity(trace.len());
    for ev in trace.events() {
        let start_time = engine.cpu_free_at().max(ev.arrival());
        let config = if profiler.needs_profiling(ev.event_type()) {
            profiler.profiling_config(ev.event_type(), &dvfs)
        } else {
            let estimate = profiler.estimate(ev.event_type()).unwrap();
            let deadline = ev.arrival() + qos.target_for_event(ev.event_type());
            let budget = deadline.saturating_sub(start_time);
            dvfs.cheapest_config_within_reference(&estimate, budget)
                .unwrap_or_else(|| platform.max_performance_config())
        };
        let record = engine.execute_event(ev, &config, false);
        engine.commit(ev, record.frame_ready_at);
        profiler.observe(ev.event_type(), config, record.busy_time, &dvfs);
        reference_configs.push(config);
    }

    let fast_configs: Vec<_> = fast.records.iter().map(|r| r.config).collect();
    assert_eq!(
        fast_configs, reference_configs,
        "ladder-backed decision sequence diverged from the pre-refactor model"
    );
    assert_eq!(
        fast.total_energy.as_microjoules().to_bits(),
        engine.total_energy().as_microjoules().to_bits(),
        "session energy must be bit-identical when every decision matches"
    );
}

/// Golden seeded sessions: one fixed `(app, seed)` replay per scheduler with
/// the frame-deadline-miss count pinned exactly and the session energy
/// pinned to the microjoule. Any change to the event fast path that shifts a
/// single scheduling decision moves these totals and fails loudly; refresh
/// the constants only for an intentional behaviour change.
#[test]
fn golden_seeded_sessions_stay_pinned() {
    let catalog = AppCatalog::paper_suite();
    let platform = Platform::exynos_5410();
    let qos = QosPolicy::paper_defaults();
    let app = catalog.find("cnn").unwrap();
    let page = app.build_page();
    let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE + 1);
    let learner = quick_learner(&catalog);

    // (policy, violations, energy in µJ) goldens for the seeded session.
    let pes = PesScheduler::new(learner, PesConfig::paper_defaults())
        .run_trace(&platform, &page, &trace, &qos);
    let oracle = OracleScheduler::new().run_trace(&platform, &page, &trace, &qos);
    let ebs = run_reactive(&platform, &trace, &mut Ebs::new(&platform), &qos);
    let interactive = run_reactive(&platform, &trace, &mut InteractiveGovernor::new(), &qos);

    let golden: [(&str, usize, f64); 4] = [
        ("PES", GOLDEN_PES.0, GOLDEN_PES.1),
        ("Oracle", GOLDEN_ORACLE.0, GOLDEN_ORACLE.1),
        ("EBS", GOLDEN_EBS.0, GOLDEN_EBS.1),
        ("Interactive", GOLDEN_INTERACTIVE.0, GOLDEN_INTERACTIVE.1),
    ];
    let measured: [(&str, usize, f64); 4] = [
        ("PES", pes.violations, pes.total_energy.as_microjoules()),
        (
            "Oracle",
            oracle.violations,
            oracle.total_energy.as_microjoules(),
        ),
        ("EBS", ebs.violations(), ebs.total_energy.as_microjoules()),
        (
            "Interactive",
            interactive.violations(),
            interactive.total_energy.as_microjoules(),
        ),
    ];
    println!("GOLDEN-CAPTURE {measured:?}");
    for ((policy, gold_violations, gold_energy), (_, violations, energy)) in
        golden.iter().zip(&measured)
    {
        assert_eq!(
            violations, gold_violations,
            "{policy}: frame-deadline misses drifted (got {violations}, golden {gold_violations}; \
             energy {energy:.3} µJ)"
        );
        assert!(
            (energy - gold_energy).abs() < 0.5,
            "{policy}: session energy drifted (got {energy:.3} µJ, golden {gold_energy:.3} µJ)"
        );
    }
}

/// Golden values for `golden_seeded_sessions_stay_pinned` (cnn, seed
/// `EVAL_SEED_BASE + 1`): `(frame-deadline misses, session energy in µJ)`.
/// Identical in debug and release builds; refresh by running the test with
/// `--nocapture` and copying the `GOLDEN-CAPTURE` line.
const GOLDEN_PES: (usize, f64) = (3, 14_053_788.188817466);
const GOLDEN_ORACLE: (usize, f64) = (0, 10_174_317.96923233);
const GOLDEN_EBS: (usize, f64) = (10, 15_007_199.115158504);
const GOLDEN_INTERACTIVE: (usize, f64) = (2, 20_044_502.467135124);

/// Golden Oracle sessions for the anytime solver: two additional seeded
/// replays whose every optimisation window is a 12-event Oracle window (13
/// items with the outstanding event), so the wide-window budget tier and the
/// best-first incumbent machinery sit on the replayed path. Violations are
/// pinned exactly and energy to 0.5 µJ, identical in debug and release —
/// any change to the anytime solver that shifts a single schedule moves
/// these and fails loudly. Refresh via `--nocapture` + the
/// `ORACLE-GOLDEN-CAPTURE` line only for an intentional behaviour change.
#[test]
fn golden_oracle_anytime_sessions_stay_pinned() {
    let catalog = AppCatalog::paper_suite();
    let platform = Platform::exynos_5410();
    let qos = QosPolicy::paper_defaults();
    let oracle = OracleScheduler::new();

    let golden: [(&str, u64, usize, f64); 2] = [
        ("ebay", 13, GOLDEN_ORACLE_EBAY.0, GOLDEN_ORACLE_EBAY.1),
        (
            "youtube",
            27,
            GOLDEN_ORACLE_YOUTUBE.0,
            GOLDEN_ORACLE_YOUTUBE.1,
        ),
    ];
    for (app_name, seed_offset, gold_violations, gold_energy) in golden {
        let app = catalog.find(app_name).unwrap();
        let page = app.build_page();
        let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE + seed_offset);
        let report = oracle.run_trace(&platform, &page, &trace, &qos);
        let energy = report.total_energy.as_microjoules();
        println!(
            "ORACLE-GOLDEN-CAPTURE {app_name}: ({}, {energy:?})",
            report.violations
        );
        assert_eq!(
            report.mispredictions, 0,
            "{app_name}: the Oracle never mispredicts"
        );
        assert_eq!(
            report.violations, gold_violations,
            "{app_name}: frame-deadline misses drifted (energy {energy:.3} µJ)"
        );
        assert!(
            (energy - gold_energy).abs() < 0.5,
            "{app_name}: session energy drifted (got {energy:.3} µJ, golden {gold_energy:.3} µJ)"
        );
    }
}

/// Golden values for `golden_oracle_anytime_sessions_stay_pinned`:
/// `(frame-deadline misses, session energy in µJ)` for the seeded ebay and
/// youtube Oracle replays. Identical in debug and release builds.
const GOLDEN_ORACLE_EBAY: (usize, f64) = (0, 10_675_336.12207985);
const GOLDEN_ORACLE_YOUTUBE: (usize, f64) = (0, 10_873_271.576855296);

/// The shape-tolerant solve memoisation must score real hits on a
/// realistic trace — the cnn replay scored exactly zero under the old
/// exact-key ring, which is what motivated the redesign. Exercised through
/// [`ExperimentContext::pes_replay`], the observability hook the
/// experiment layer exposes for the memo counters.
#[test]
fn cnn_replay_scores_solve_memo_hits() {
    let catalog = AppCatalog::paper_suite();
    let platform = Platform::exynos_5410();
    let power_plane = Arc::new(DvfsLadder::for_platform(&platform));
    let ctx = ExperimentContext {
        platform,
        power_plane,
        qos: QosPolicy::paper_defaults(),
        learner: quick_learner(&catalog),
        catalog,
        traces_per_app: 1,
        scenarios: ScenarioCache::build(&AppCatalog::paper_suite(), 2),
        faults: FaultPlane::none(),
    };
    let report = ctx
        .pes_replay("cnn", 0, PesConfig::paper_defaults())
        .expect("cnn is in the paper suite");
    assert!(
        report.solver_cache_hits > 0,
        "the shape-tolerant memo ring must engage on the cnn replay \
         (hits {}, misses {}, revalidations {})",
        report.solver_cache_hits,
        report.solver_cache_misses,
        report.solver_cache_revalidations
    );
    assert!(
        report.solver_cache_revalidations >= report.solver_cache_hits,
        "every hit passes through a revalidation"
    );
    assert!(report.solver_cache_hit_rate() > 0.0);
    // Disabling the hysteresis reverts to the exact-key behaviour; the
    // counters must reflect the (much) lower reuse so the comparison stays
    // observable.
    let exact = ctx
        .pes_replay(
            "cnn",
            0,
            PesConfig::paper_defaults().with_planning_hysteresis(0.0),
        )
        .expect("cnn is in the paper suite");
    assert!(exact.solver_cache_hits <= report.solver_cache_hits);
}

/// Golden cnn-trace PES replay for the shape-tolerant memo ring: the
/// bench-unit scenario (cnn, seed `EVAL_SEED_BASE`) with violations pinned
/// exactly, session energy to 0.5 µJ and a nonzero memo hit count,
/// identical in debug and release. Any change to the memo key, the
/// planning hysteresis or the sorted-row re-pose that shifts a single
/// scheduling decision moves these and fails loudly; refresh via
/// `--nocapture` + the `PES-MEMO-GOLDEN-CAPTURE` line only for an
/// intentional behaviour change.
#[test]
fn golden_pes_shape_memo_session_stays_pinned() {
    let catalog = AppCatalog::paper_suite();
    let platform = Platform::exynos_5410();
    let qos = QosPolicy::paper_defaults();
    let app = catalog.find("cnn").unwrap();
    let page = app.build_page();
    let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE);
    let pes = PesScheduler::new(quick_learner(&catalog), PesConfig::paper_defaults());
    let report = pes.run_trace(&platform, &page, &trace, &qos);
    let energy = report.total_energy.as_microjoules();
    println!(
        "PES-MEMO-GOLDEN-CAPTURE cnn: ({}, {energy:?}, {} hits / {} lookups)",
        report.violations,
        report.solver_cache_hits,
        report.solver_cache_hits + report.solver_cache_misses
    );
    assert_eq!(
        report.violations, GOLDEN_PES_MEMO.0,
        "frame-deadline misses drifted (energy {energy:.3} µJ)"
    );
    assert!(
        (energy - GOLDEN_PES_MEMO.1).abs() < 0.5,
        "session energy drifted (got {energy:.3} µJ, golden {:.3} µJ)",
        GOLDEN_PES_MEMO.1
    );
    assert_eq!(
        report.solver_cache_hits, GOLDEN_PES_MEMO.2,
        "memo hit count drifted"
    );
    assert!(
        report.solver_cache_hits > 0,
        "the pinned session must reuse windows"
    );
}

/// Golden values for `golden_pes_shape_memo_session_stays_pinned` (cnn,
/// seed `EVAL_SEED_BASE`): `(frame-deadline misses, session energy in µJ,
/// solve-memo hits)`. Identical in debug and release builds.
const GOLDEN_PES_MEMO: (usize, f64, usize) = (0, 16_238_803.662925582, 5);

/// Zero-fault identity golden: replaying the pinned sessions through the
/// fault-aware entry point with [`FaultPlane::none`] must be byte-identical
/// to the fault-free path — same pinned violations, energy within the same
/// 0.5 µJ golden band, same memo hit count, zero injections, a fully
/// populated degradation ladder and an energy breakdown that sums to the
/// session total. Identical in debug and release builds. This is the
/// contract that lets every existing driver ignore the fault plane: the
/// disabled plane never draws from its RNG stream.
#[test]
fn zero_fault_plane_replays_stay_pinned_to_the_goldens() {
    let catalog = AppCatalog::paper_suite();
    let platform = Platform::exynos_5410();
    let plane = Arc::new(DvfsLadder::for_platform(&platform));
    let qos = QosPolicy::paper_defaults();
    let app = catalog.find("cnn").unwrap();
    let page = app.build_page();
    let learner = quick_learner(&catalog);
    let pes = PesScheduler::new(learner, PesConfig::paper_defaults());
    let none = FaultPlane::none();
    assert!(none.is_none());
    assert!(FaultPlane::new(FaultConfig::disabled()).is_none());

    // The PR 5 golden session (cnn, EVAL_SEED_BASE + 1), driven through the
    // fault-aware entry point.
    let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE + 1);
    let golden = pes.run_trace_with_plane_and_faults(&platform, &plane, &page, &trace, &qos, &none);
    assert_eq!(
        golden.violations, GOLDEN_PES.0,
        "zero-fault replay drifted from the golden frame-deadline misses"
    );
    assert!(
        (golden.total_energy.as_microjoules() - GOLDEN_PES.1).abs() < 0.5,
        "zero-fault replay drifted from the golden session energy \
         (got {:.3} µJ, golden {:.3} µJ)",
        golden.total_energy.as_microjoules(),
        GOLDEN_PES.1
    );

    // The memo-ring golden session (cnn, EVAL_SEED_BASE): violations, energy
    // and memo hits all pinned through the fault-aware path too.
    let memo_trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE);
    let memo =
        pes.run_trace_with_plane_and_faults(&platform, &plane, &page, &memo_trace, &qos, &none);
    assert_eq!(memo.violations, GOLDEN_PES_MEMO.0);
    assert!((memo.total_energy.as_microjoules() - GOLDEN_PES_MEMO.1).abs() < 0.5);
    assert_eq!(
        memo.solver_cache_hits, GOLDEN_PES_MEMO.2,
        "memo hit count drifted under the disabled fault plane"
    );

    // The disabled plane is observable as exactly that: no injections, a
    // ladder entry for every planning decision, and an energy breakdown
    // that reconciles with the session total.
    for report in [&golden, &memo] {
        assert_eq!(report.fault_injections.total(), 0, "no faults injected");
        assert_eq!(report.unprofiled_fallbacks, 0);
        assert!(report.degradation.decisions() > 0, "ladder is populated");
        let breakdown: f64 = report
            .energy_breakdown
            .iter()
            .map(|(_, e)| e.as_microjoules())
            .sum();
        assert!(
            (breakdown - report.total_energy.as_microjoules()).abs() < 0.5,
            "energy breakdown must sum to the session total \
             (sum {breakdown:.3} µJ vs total {:.3} µJ)",
            report.total_energy.as_microjoules()
        );
    }

    // And the fault-free legacy entry point agrees bit for bit.
    let legacy = pes.run_trace_with_plane(&platform, &plane, &page, &trace, &qos);
    assert_eq!(
        legacy.total_energy.as_microjoules().to_bits(),
        golden.total_energy.as_microjoules().to_bits(),
        "FaultPlane::none() must be bit-identical to the fault-free path"
    );
    assert_eq!(legacy.violations, golden.violations);
    assert_eq!(legacy.solver_cache_hits, golden.solver_cache_hits);
}

#[test]
fn disabling_dom_analysis_never_helps_prediction() {
    let catalog = AppCatalog::paper_suite();
    let generator = TraceGenerator::new();
    let trainer = Trainer::with_config(TrainingConfig {
        traces_per_app: 3,
        epochs: 25,
        ..Default::default()
    });
    let with_dom = trainer.train_learner(&catalog, LearnerConfig::paper_defaults());
    let without_dom =
        trainer.train_learner(&catalog, LearnerConfig::paper_defaults().with_lnes(false));
    let mut acc_with = 0.0;
    let mut acc_without = 0.0;
    let mut n = 0.0;
    for app in catalog.seen_apps().take(6) {
        let page = app.build_page();
        let traces = generator.generate_many(app, &page, EVAL_SEED_BASE, 2);
        acc_with += pes::predictor::evaluate_accuracy(&with_dom, &page, &traces);
        acc_without += pes::predictor::evaluate_accuracy(&without_dom, &page, &traces);
        n += 1.0;
    }
    assert!(acc_with / n + 1e-9 >= acc_without / n);
}

// ---------------------------------------------------------------------------
// Fleet resilience suite: the streaming fleet driver under chaos — watchdog
// demotion, breaker routing, load shedding and journaled resume.
// ---------------------------------------------------------------------------

mod fleet_resilience {
    use super::*;
    use std::path::PathBuf;
    use std::sync::OnceLock;

    use pes::core::WatchdogConfig;
    use pes::schedulers::RoutedTier;
    use pes::sim::{
        resume_fleet, run_fleet, run_fleet_journaled, BreakerConfig, CostRouteConfig, FleetConfig,
        FleetError, FleetRunReport, FleetSpec, ShedPolicy,
    };

    /// One shared context for the whole module: training dominates the
    /// cost of every fleet test otherwise. The fault plane is aggressive —
    /// every class enabled at rates well above the chaos-tier defaults.
    fn ctx() -> &'static ExperimentContext {
        static CTX: OnceLock<ExperimentContext> = OnceLock::new();
        CTX.get_or_init(|| {
            let catalog = AppCatalog::paper_suite();
            let platform = Platform::exynos_5410();
            let power_plane = Arc::new(DvfsLadder::for_platform(&platform));
            ExperimentContext {
                platform,
                power_plane,
                qos: QosPolicy::paper_defaults(),
                learner: quick_learner(&catalog),
                catalog,
                traces_per_app: 1,
                scenarios: ScenarioCache::build(&AppCatalog::paper_suite(), 2),
                faults: FaultPlane::new(FaultConfig {
                    seed: 0xC0FF_EE00,
                    prediction_flip: 0.25,
                    confidence_corruption: 0.2,
                    demand_drift: 0.3,
                    drift_magnitude: 0.8,
                    solver_starvation: 0.4,
                    rung_mask: 0b1010,
                    vsync_delay: 0.15,
                    queue_duplicate: 0.1,
                    queue_drop: 0.1,
                }),
            }
        })
    }

    /// A storm-heavy stream of short sessions: steady arrivals with a
    /// triple-size burst every fourth step, sessions truncated to eight
    /// events so the suite stays fast.
    fn storm_spec() -> FleetSpec {
        FleetSpec {
            sessions: 60,
            seed: 0xFEED_5EED,
            arrivals_per_step: 5,
            storm_every: 3,
            storm_arrivals: 14,
            max_events_per_session: 8,
            scenario_cycle: 0,
        }
    }

    /// Tight resilience thresholds so every mechanism engages on the small
    /// spec: a four-event watchdog budget (every session trips at least
    /// once), hair-trigger breakers and a queue small enough that storms
    /// must shed.
    fn resilient_config() -> FleetConfig {
        FleetConfig {
            batch_size: 4,
            queue_capacity: 12,
            shed: ShedPolicy::LowestPriorityFirst,
            retries: 1,
            threads: 0,
            shards: 3,
            breaker: BreakerConfig {
                window: 6,
                trip_threshold: 3,
                cooldown_batches: 1,
                probes: 1,
                close_after: 2,
                open_tier: RoutedTier::Reactive,
            },
            watchdog: WatchdogConfig {
                node_budget: 0,
                event_budget: 4,
            },
            violation_spike: 3,
            packed_prediction: false,
            shared_memo: true,
            generation_cap: 512,
            cost_routing: CostRouteConfig::default(),
        }
    }

    fn tmp_journal(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pes_fleet_{}_{tag}.journal", std::process::id()))
    }

    fn assert_same_aggregates(a: &FleetRunReport, b: &FleetRunReport) {
        assert_eq!(
            a.energy_bits(),
            b.energy_bits(),
            "energy must match to the bit"
        );
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.events, b.events);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.shed_by_priority, b.shed_by_priority);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.batches, b.batches);
        assert_eq!(a.peak_queue, b.peak_queue);
        assert_eq!(a.degradation, b.degradation);
        assert_eq!(a.injections, b.injections);
        assert_eq!(a.predicted_openings, b.predicted_openings);
        assert_eq!(a.watchdog_trips, b.watchdog_trips);
        assert_eq!(
            a.breaker_histories, b.breaker_histories,
            "breaker transition histories must replay identically"
        );
        assert_eq!(a.breaker_finals, b.breaker_finals);
        let key = |r: &FleetRunReport| -> Vec<_> {
            r.failures
                .iter()
                .map(|f| (f.index, f.attempts, f.last_level))
                .collect()
        };
        assert_eq!(key(a), key(b), "quarantine records must match");
    }

    /// The full resilience ladder engages on a storm-heavy chaos stream —
    /// watchdog trips demote tiers, breakers open and route units
    /// reactively, half-open probes run, the bounded queue sheds — and the
    /// whole thing is deterministic.
    #[test]
    fn streaming_fleet_degrades_gracefully_and_deterministically_under_storms() {
        let spec = storm_spec();
        let config = resilient_config();
        let report = run_fleet(ctx(), &spec, &config);

        assert_eq!(
            report.completed + report.shed + report.failures.len(),
            spec.sessions,
            "every session is served, shed or quarantined — never lost"
        );
        assert!(report.shed > 0, "storms must overflow the bounded queue");
        assert!(report.peak_queue <= config.queue_capacity);
        assert!(
            report.watchdog_trips > 0,
            "the four-event budget must trip on eight-event sessions"
        );
        assert!(
            report.breaker_opens() > 0,
            "sustained bad outcomes must open a breaker (histories {:?})",
            report.breaker_histories
        );
        assert!(
            report.breaker_histories.iter().any(|h| h.contains('H')),
            "an opened breaker must half-open after its cooldown"
        );
        assert!(
            report.degradation.reactive > 0,
            "breaker-routed units must serve reactively"
        );
        assert!(report.events > 0 && report.energy_uj > 0.0);

        let again = run_fleet(ctx(), &spec, &config);
        assert_same_aggregates(&report, &again);
    }

    /// Kill-and-resume identity: truncating the journal mid-run (plus a
    /// torn half-written final line, as a real kill leaves behind) and
    /// resuming reproduces the uninterrupted run's aggregates bit for bit —
    /// energy, violations, degradation, breaker-state history, shedding and
    /// the journal tail itself.
    #[test]
    fn fleet_kill_and_resume_matches_uninterrupted_aggregates() {
        let spec = storm_spec();
        let config = resilient_config();
        let full_path = tmp_journal("full");
        let full =
            run_fleet_journaled(ctx(), &spec, &config, &full_path).expect("journaled run succeeds");

        let journal = std::fs::read_to_string(&full_path).expect("journal readable");
        let lines: Vec<&str> = journal.lines().collect();
        assert_eq!(lines.len(), full.batches, "one record per batch");

        // Simulate the kill: keep the first half of the records and a torn
        // fragment of the next one.
        let keep = lines.len() / 2;
        assert!(keep >= 1, "need at least one intact record to resume from");
        let mut killed = lines[..keep].join("\n");
        killed.push('\n');
        killed.push_str(&lines[keep][..lines[keep].len() / 2]);
        let killed_path = tmp_journal("killed");
        std::fs::write(&killed_path, &killed).expect("write killed journal");

        let resumed = resume_fleet(ctx(), &spec, &config, &killed_path).expect("resume succeeds");
        assert_same_aggregates(&full, &resumed);

        // The resumed journal converges on the uninterrupted one: same
        // record count, byte-identical final record.
        let resumed_journal = std::fs::read_to_string(&killed_path).expect("journal readable");
        let resumed_lines: Vec<&str> = resumed_journal.lines().collect();
        assert_eq!(resumed_lines.len(), full.batches);
        assert_eq!(
            resumed_lines.last(),
            lines.last(),
            "the final journal record must be byte-identical after a resume"
        );

        // Resuming a journal that already covers the whole run re-executes
        // nothing and reports the same aggregates.
        let replayed =
            resume_fleet(ctx(), &spec, &config, &full_path).expect("no-op resume succeeds");
        assert_same_aggregates(&full, &replayed);

        std::fs::remove_file(&full_path).ok();
        std::fs::remove_file(&killed_path).ok();
        println!(
            "KILL-RESUME killed_at={keep}/{} batches steps={} completed={} shed={} \
             violations={} events={} energy_bits={:#018x} trips={} opens={} \
             breakers={:?}",
            full.batches,
            full.steps,
            full.completed,
            full.shed,
            full.violations,
            full.events,
            full.energy_bits(),
            full.watchdog_trips,
            full.breaker_opens(),
            full.breaker_histories,
        );
    }

    /// PR 8 golden for the single-batch packed-prediction fleet replay:
    /// `(violations, energy µJ, predict_many opening histogram)`.
    const GOLDEN_BATCHED_FLEET: (usize, f64, [usize; 7]) =
        (12, 32_082_523.87536225, [0, 0, 0, 6, 0, 0, 0]);

    /// PR 8 golden: a single-batch fleet replay with the packed prediction
    /// plane on stays pinned — exact violation count, energy within 0.5 µJ,
    /// and the batched `predict_many` opening histogram exact. Identical in
    /// debug and release builds. Re-pin via `--nocapture` and the
    /// `BATCHED-FLEET-GOLDEN-CAPTURE` line only for an intentional
    /// behaviour change.
    #[test]
    fn golden_batched_prediction_fleet_replay_stays_pinned() {
        let spec = FleetSpec {
            sessions: 6,
            seed: 0xFEED_5EED,
            arrivals_per_step: 6,
            storm_every: 7,
            storm_arrivals: 0,
            max_events_per_session: 8,
            scenario_cycle: 0,
        };
        let config = FleetConfig {
            batch_size: 8,
            queue_capacity: 16,
            shed: ShedPolicy::OldestFirst,
            retries: 1,
            threads: 0,
            shards: 2,
            breaker: BreakerConfig::default(),
            watchdog: WatchdogConfig {
                node_budget: 0,
                event_budget: 0,
            },
            violation_spike: usize::MAX,
            packed_prediction: true,
            shared_memo: true,
            generation_cap: 512,
            cost_routing: CostRouteConfig::default(),
        };
        let report = run_fleet(ctx(), &spec, &config);
        println!(
            "BATCHED-FLEET-GOLDEN-CAPTURE ({}, {:?}, {:?})",
            report.violations, report.energy_uj, report.predicted_openings
        );
        assert_eq!(report.batches, 1, "the spec must drain in one batch");
        assert_eq!(report.completed, spec.sessions);
        assert_eq!(
            report.predicted_openings.iter().sum::<usize>(),
            spec.sessions,
            "every admitted unit gets exactly one batched opening prediction"
        );
        assert_eq!(report.violations, GOLDEN_BATCHED_FLEET.0);
        assert!(
            (report.energy_uj - GOLDEN_BATCHED_FLEET.1).abs() < 0.5,
            "energy {} drifted from golden {}",
            report.energy_uj,
            GOLDEN_BATCHED_FLEET.1
        );
        assert_eq!(report.predicted_openings, GOLDEN_BATCHED_FLEET.2);

        let again = run_fleet(ctx(), &spec, &config);
        assert_same_aggregates(&report, &again);
    }

    /// The shared cross-replay solve cache is a pure wall-clock
    /// optimisation: a repeated-config sweep (no storms, no watchdog, many
    /// sessions over the same 18 pages) produces byte-identical aggregates
    /// with the shared memo on or off — same energy bits, same solver
    /// nodes, same per-replay memo counters — while the generation answers
    /// a real share of ring misses and lifts the cross-replay hit rate
    /// above the per-replay baseline.
    #[test]
    fn shared_solve_memo_is_aggregate_identical_and_lifts_cross_replay_hit_rate() {
        let spec = FleetSpec {
            sessions: 48,
            seed: 0x5EED_CAFE,
            arrivals_per_step: 8,
            storm_every: 0,
            storm_arrivals: 0,
            max_events_per_session: 10,
            scenario_cycle: 12,
        };
        let shared_cfg = FleetConfig {
            batch_size: 8,
            queue_capacity: 64,
            watchdog: WatchdogConfig::disabled(),
            ..FleetConfig::default()
        };
        let solo_cfg = FleetConfig {
            shared_memo: false,
            ..shared_cfg.clone()
        };
        let shared = run_fleet(ctx(), &spec, &shared_cfg);
        let solo = run_fleet(ctx(), &spec, &solo_cfg);

        assert_same_aggregates(&shared, &solo);
        assert_eq!(shared.solver_nodes, solo.solver_nodes);
        assert_eq!(shared.memo_hits, solo.memo_hits);
        assert_eq!(shared.memo_misses, solo.memo_misses);
        assert_eq!(shared.routed_entries, solo.routed_entries);
        assert_eq!(
            (solo.shared_hits, solo.shared_lookups),
            (0, 0),
            "the per-replay baseline never probes a generation"
        );
        assert!(
            shared.shared_hits > 0,
            "the sweep must reuse solves across replays (lookups {})",
            shared.shared_lookups
        );
        assert!(
            shared.combined_hit_rate() > solo.memo_hit_rate(),
            "combined {:.3} must beat the per-replay baseline {:.3}",
            shared.combined_hit_rate(),
            solo.memo_hit_rate()
        );
        println!(
            "SHARED-MEMO baseline_hit_rate={:.4} combined_hit_rate={:.4} \
             shared_hits={} shared_lookups={} solver_nodes={}",
            solo.memo_hit_rate(),
            shared.combined_hit_rate(),
            shared.shared_hits,
            shared.shared_lookups,
            shared.solver_nodes,
        );
    }

    /// Same FNV-1a the journal uses, so the tests can re-checksum rewritten
    /// record payloads.
    fn fnv1a(payload: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in payload.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Journal-format compatibility: a run killed under the previous (`J2`)
    /// build resumes under this one — the pre-routing records parse with
    /// their missing fields restored as zeros and the resume-stable
    /// aggregates still come out byte-identical — while a journal written
    /// by an unknown future build is rejected with the typed version error
    /// instead of being mistaken for a torn tail and silently restarted.
    #[test]
    fn resume_reads_older_journal_versions_and_rejects_unknown_magic() {
        let spec = storm_spec();
        let config = resilient_config();
        let full_path = tmp_journal("ver_full");
        let full =
            run_fleet_journaled(ctx(), &spec, &config, &full_path).expect("journaled run succeeds");
        let journal = std::fs::read_to_string(&full_path).expect("journal readable");
        let lines: Vec<&str> = journal.lines().collect();

        // Downgrade the first half of the records to the J2 format: drop
        // the `nodes=`/`mh=`/`mm=`/`ent=`/`ema=` tokens, swap the magic,
        // re-checksum.
        let keep = lines.len() / 2;
        assert!(keep >= 1);
        let downgrade = |line: &str| -> String {
            let (payload, _) = line.rsplit_once(" #").expect("checksummed record");
            let start = payload.find(" nodes=").expect("J3 solver fields");
            let end = payload.find(" fail=").expect("fail field");
            let stripped = format!("{}{}", &payload[..start], &payload[end..]);
            let old = stripped.replace("PESFLEETJ3", "PESFLEETJ2");
            format!("{old} #{:016x}", fnv1a(&old))
        };
        let mut old_journal = lines[..keep]
            .iter()
            .map(|l| downgrade(l))
            .collect::<Vec<_>>()
            .join("\n");
        old_journal.push('\n');
        let old_path = tmp_journal("ver_old");
        std::fs::write(&old_path, &old_journal).expect("write downgraded journal");
        let resumed =
            resume_fleet(ctx(), &spec, &config, &old_path).expect("J2 journal resumes cleanly");
        assert_same_aggregates(&full, &resumed);

        // A future-format journal must surface the version, even when its
        // unreadable record is the final line.
        let (payload, _) = lines[0].rsplit_once(" #").expect("checksummed record");
        let future = payload.replace("PESFLEETJ3", "PESFLEETJ7");
        let future_line = format!("{future} #{:016x}\n", fnv1a(&future));
        let future_path = tmp_journal("ver_future");
        std::fs::write(&future_path, &future_line).expect("write future journal");
        match resume_fleet(ctx(), &spec, &config, &future_path) {
            Err(FleetError::JournalVersion { found, supported }) => {
                assert_eq!(found, "PESFLEETJ7");
                assert!(supported.contains("PESFLEETJ3"));
            }
            other => panic!("expected a journal-version error, got {other:?}"),
        }

        std::fs::remove_file(&full_path).ok();
        std::fs::remove_file(&old_path).ok();
        std::fs::remove_file(&future_path).ok();
    }

    /// Release-tier scale test (CI runs it with `--ignored`): a 100k-session
    /// chaos fleet under the aggressive fault plane completes with zero
    /// aborts — every session is served, shed or quarantined — while the
    /// admission queue (the only unbounded-looking buffer) stays within its
    /// configured capacity.
    #[test]
    #[ignore = "release-tier scale test, run via CI with --ignored"]
    fn hundred_thousand_session_chaos_fleet_completes_with_bounded_memory() {
        let spec = FleetSpec {
            sessions: 100_000,
            seed: 0x0A_CE0F_5EED,
            arrivals_per_step: 192,
            storm_every: 8,
            storm_arrivals: 1_024,
            max_events_per_session: 5,
            scenario_cycle: 0,
        };
        let config = FleetConfig {
            batch_size: 256,
            queue_capacity: 1_024,
            shed: ShedPolicy::LowestPriorityFirst,
            retries: 1,
            threads: 0,
            shards: 8,
            breaker: BreakerConfig {
                window: 16,
                trip_threshold: 6,
                cooldown_batches: 2,
                probes: 2,
                close_after: 3,
                open_tier: RoutedTier::Reactive,
            },
            watchdog: WatchdogConfig {
                node_budget: 0,
                event_budget: 3,
            },
            violation_spike: 2,
            packed_prediction: false,
            shared_memo: true,
            generation_cap: 1_024,
            cost_routing: CostRouteConfig::default(),
        };
        let report = run_fleet(ctx(), &spec, &config);
        assert_eq!(
            report.completed + report.shed + report.failures.len(),
            spec.sessions,
            "zero aborts: every session accounted for"
        );
        assert!(
            report.peak_queue <= config.queue_capacity,
            "memory stays bounded"
        );
        assert!(report.shed > 0, "storms must exercise the shed path");
        assert!(report.watchdog_trips > 0);
        assert!(report.breaker_opens() > 0);
        assert!(report.events > 0);
        assert!(report.energy_uj.is_finite() && report.energy_uj > 0.0);
        println!(
            "100K-FLEET completed={} shed={} quarantined={} trips={} opens={} energy={:.3e}uJ",
            report.completed,
            report.shed,
            report.failures.len(),
            report.watchdog_trips,
            report.breaker_opens(),
            report.energy_uj
        );
    }
}

/// PR 8 — differential lockdown of the batched + SIMD prediction plane at
/// the integration tier: the quantised i8 tier must agree with the f32
/// decisions on every real catalog trace, and the batched figure sweep must
/// be bit-identical to the packed single-session path it claims to batch.
mod prediction_plane {
    use super::*;

    use pes::dom::EventTypeSet;
    use pes::predictor::{QuantizedModel, SessionState, FEATURE_DIM};
    use pes::sim::{fig8_accuracy, fig8_accuracy_batched};

    /// The i8 weight tier never flips a class decision against the f32
    /// packed plane on any evaluation trace of the 18-app catalog. The
    /// expected flip count is exactly zero; any offending event is printed
    /// with both score vectors before the assert fires.
    #[test]
    fn quantised_tier_never_flips_a_catalog_decision() {
        let catalog = AppCatalog::paper_suite();
        let learner = quick_learner(&catalog);
        let packed = learner.packed();
        let quantised = QuantizedModel::from_packed(packed);
        let use_lnes = learner.config().use_lnes;

        let mut flips = 0usize;
        let mut decisions = 0usize;
        let mut features = Vec::with_capacity(FEATURE_DIM);
        let mut padded = Vec::new();
        for app in catalog.apps() {
            let page = app.build_page();
            let traces = TraceGenerator::new().generate_many(app, &page, EVAL_SEED_BASE, 2);
            for (trace_idx, trace) in traces.iter().enumerate() {
                let mut state = SessionState::new(page.tree.clone());
                for (i, event) in trace.events().iter().enumerate() {
                    if i > 0 {
                        state.features_into(&mut features);
                        packed.pad_features(&features, &mut padded);
                        let mask = if use_lnes {
                            state.allowed_types()
                        } else {
                            EventTypeSet::ALL
                        };
                        let (exact, _) = packed.predict_masked(&padded, mask);
                        let (approx, _) = quantised.predict_masked(&padded, mask);
                        decisions += 1;
                        if exact != approx {
                            flips += 1;
                            println!(
                                "QUANT-FLIP app={} trace={trace_idx} event={i} \
                                 f32={exact:?} i8={approx:?}\n  f32 scores {:?}\n  i8 scores {:?}",
                                app.name(),
                                packed.scores(&padded),
                                quantised.scores(&padded),
                            );
                        }
                    }
                    state.observe(event);
                }
            }
        }
        println!("QUANT-DIFF decisions={decisions} flips={flips}");
        assert!(decisions > 1_000, "catalog sweep must exercise real volume");
        assert_eq!(
            flips, 0,
            "i8 tier flipped {flips}/{decisions} catalog decisions against f32"
        );
    }

    /// `fig8_accuracy_batched` is bit-identical to walking each session
    /// through the packed single-prediction path, and stays within a loose
    /// band of the scalar f64 figure it approximates.
    #[test]
    fn batched_figure_sweep_matches_packed_single_path_exactly() {
        let catalog = AppCatalog::paper_suite();
        let ctx = ExperimentContext {
            platform: Platform::exynos_5410(),
            power_plane: Arc::new(DvfsLadder::for_platform(&Platform::exynos_5410())),
            qos: QosPolicy::paper_defaults(),
            learner: quick_learner(&catalog),
            catalog,
            traces_per_app: 2,
            scenarios: ScenarioCache::build(&AppCatalog::paper_suite(), 2),
            faults: pes::core::FaultPlane::none(),
        };

        let batched = fig8_accuracy_batched(&ctx, true);
        let scalar = fig8_accuracy(&ctx, true);
        assert_eq!(batched.len(), ctx.catalog.apps().len());

        let mut single = ctx.learner.clone();
        single.set_config(
            LearnerConfig::paper_defaults()
                .with_lnes(true)
                .with_packed(true),
        );
        for (app_idx, (name, _, accuracy)) in batched.iter().enumerate() {
            // Reference: the packed single-session path, one event at a time.
            let mut total = 0usize;
            let mut correct = 0usize;
            for trace in &ctx.scenarios.traces(app_idx)[..2] {
                let mut state = SessionState::new(ctx.scenarios.page_ref(app_idx).tree.clone());
                for (i, event) in trace.events().iter().enumerate() {
                    if i > 0 {
                        let (predicted, _) = single.predict_next_packed(&mut state);
                        total += 1;
                        if predicted == event.event_type() {
                            correct += 1;
                        }
                    }
                    state.observe(event);
                }
            }
            let reference = if total == 0 {
                0.0
            } else {
                correct as f64 / total as f64
            };
            assert_eq!(
                accuracy.to_bits(),
                reference.to_bits(),
                "{name}: batched accuracy must equal the packed single path bit for bit"
            );
            let f64_figure = scalar[app_idx].2;
            assert!(
                (accuracy - f64_figure).abs() < 0.1,
                "{name}: packed accuracy {accuracy} strayed from the f64 figure {f64_figure}"
            );
        }
    }
}
