//! Cross-crate integration tests: the full PES stack (workload → predictor →
//! optimizer → speculative execution → metrics) against the reactive
//! baselines.

use pes::acmp::Platform;
use pes::core::{OracleScheduler, PesConfig, PesScheduler};
use pes::predictor::{LearnerConfig, Trainer, TrainingConfig};
use pes::schedulers::{Ebs, InteractiveGovernor, OndemandGovernor};
use pes::sim::{classify_events, distribution, run_reactive};
use pes::webrt::QosPolicy;
use pes::workload::{AppCatalog, TraceGenerator, EVAL_SEED_BASE};

fn quick_learner(catalog: &AppCatalog) -> pes::predictor::EventSequenceLearner {
    Trainer::with_config(TrainingConfig {
        traces_per_app: 3,
        epochs: 25,
        ..Default::default()
    })
    .train_learner(catalog, LearnerConfig::paper_defaults())
}

#[test]
fn pes_improves_on_ebs_for_energy_and_qos_across_several_apps() {
    let catalog = AppCatalog::paper_suite();
    let platform = Platform::exynos_5410();
    let qos = QosPolicy::paper_defaults();
    let learner = quick_learner(&catalog);
    let pes = PesScheduler::new(learner, PesConfig::paper_defaults());
    let generator = TraceGenerator::new();

    let mut pes_energy = 0.0;
    let mut ebs_energy = 0.0;
    let mut interactive_energy = 0.0;
    let mut pes_violations = 0usize;
    let mut ebs_violations = 0usize;
    let mut events = 0usize;

    for app_name in ["cnn", "bbc", "ebay", "sina", "youtube"] {
        let app = catalog.find(app_name).unwrap();
        let page = app.build_page();
        for seed in 0..2 {
            let trace = generator.generate(app, &page, EVAL_SEED_BASE + seed);
            events += trace.len();
            let i = run_reactive(&platform, &trace, &mut InteractiveGovernor::new(), &qos);
            interactive_energy += i.total_energy.as_millijoules();
            let e = run_reactive(&platform, &trace, &mut Ebs::new(&platform), &qos);
            ebs_energy += e.total_energy.as_millijoules();
            ebs_violations += e.violations();
            let p = pes.run_trace(&platform, &page, &trace, &qos);
            pes_energy += p.total_energy.as_millijoules();
            pes_violations += p.violations;
        }
    }

    assert!(events > 100, "enough events to make the comparison meaningful");
    assert!(
        pes_energy < ebs_energy,
        "PES should use less energy than EBS ({pes_energy:.0} vs {ebs_energy:.0} mJ)"
    );
    assert!(
        pes_energy < interactive_energy,
        "PES should use less energy than Interactive"
    );
    assert!(
        ebs_energy < interactive_energy,
        "EBS should use less energy than Interactive"
    );
    assert!(
        pes_violations < ebs_violations,
        "PES should violate QoS less often than EBS ({pes_violations} vs {ebs_violations})"
    );
}

#[test]
fn oracle_dominates_every_policy_it_is_compared_against() {
    let catalog = AppCatalog::paper_suite();
    let platform = Platform::exynos_5410();
    let qos = QosPolicy::paper_defaults();
    let learner = quick_learner(&catalog);
    let pes = PesScheduler::new(learner, PesConfig::paper_defaults());
    let oracle = OracleScheduler::new();
    let generator = TraceGenerator::new();

    let app = catalog.find("espn").unwrap();
    let page = app.build_page();
    let trace = generator.generate(app, &page, EVAL_SEED_BASE + 21);

    let pes_report = pes.run_trace(&platform, &page, &trace, &qos);
    let oracle_report = oracle.run_trace(&platform, &page, &trace, &qos);

    assert!(oracle_report.violations <= pes_report.violations);
    assert!(
        oracle_report.total_energy.as_microjoules()
            <= pes_report.total_energy.as_microjoules() * 1.05
    );
    assert_eq!(oracle_report.mispredictions, 0);
    // The oracle's "prediction" is the actual future, so its online accuracy
    // is perfect whenever it speculates at all.
    assert!(oracle_report.predictions == 0 || oracle_report.prediction_accuracy() > 0.999);
}

#[test]
fn event_type_distribution_matches_the_motivation_narrative() {
    // Under EBS a meaningful fraction of events is Type I/II/III, and Type IV
    // (benign) events dominate — the Sec. 4.3 observation that motivates a
    // proactive scheduler.
    let catalog = AppCatalog::paper_suite();
    let platform = Platform::exynos_5410();
    let dvfs = pes::acmp::DvfsModel::new(&platform);
    let qos = QosPolicy::paper_defaults();
    let generator = TraceGenerator::new();
    let mut classes = Vec::new();
    for app in catalog.seen_apps() {
        let page = app.build_page();
        let trace = generator.generate(app, &page, EVAL_SEED_BASE + 33);
        let report = run_reactive(&platform, &trace, &mut Ebs::new(&platform), &qos);
        classes.extend(classify_events(&report, trace.events(), &dvfs, &qos));
    }
    let dist = distribution(&classes);
    assert!(dist.qos_missing() > 0.03, "{dist:?}");
    assert!(dist.qos_missing() < 0.5, "{dist:?}");
    assert!(dist.type_iv > 0.4, "{dist:?}");
}

#[test]
fn ondemand_trades_qos_for_energy_relative_to_interactive() {
    let catalog = AppCatalog::paper_suite();
    let platform = Platform::exynos_5410();
    let qos = QosPolicy::paper_defaults();
    let generator = TraceGenerator::new();
    let mut ondemand_energy = 0.0;
    let mut interactive_energy = 0.0;
    let mut ondemand_violations = 0usize;
    let mut interactive_violations = 0usize;
    for app_name in ["cnn", "msn", "taobao"] {
        let app = catalog.find(app_name).unwrap();
        let page = app.build_page();
        let trace = generator.generate(app, &page, EVAL_SEED_BASE + 2);
        let od = run_reactive(&platform, &trace, &mut OndemandGovernor::new(), &qos);
        let ia = run_reactive(&platform, &trace, &mut InteractiveGovernor::new(), &qos);
        ondemand_energy += od.total_energy.as_millijoules();
        interactive_energy += ia.total_energy.as_millijoules();
        ondemand_violations += od.violations();
        interactive_violations += ia.violations();
    }
    assert!(ondemand_energy < interactive_energy);
    assert!(ondemand_violations >= interactive_violations);
}

#[test]
fn disabling_dom_analysis_never_helps_prediction() {
    let catalog = AppCatalog::paper_suite();
    let generator = TraceGenerator::new();
    let trainer = Trainer::with_config(TrainingConfig {
        traces_per_app: 3,
        epochs: 25,
        ..Default::default()
    });
    let with_dom = trainer.train_learner(&catalog, LearnerConfig::paper_defaults());
    let without_dom =
        trainer.train_learner(&catalog, LearnerConfig::paper_defaults().with_lnes(false));
    let mut acc_with = 0.0;
    let mut acc_without = 0.0;
    let mut n = 0.0;
    for app in catalog.seen_apps().take(6) {
        let page = app.build_page();
        let traces = generator.generate_many(app, &page, EVAL_SEED_BASE, 2);
        acc_with += pes::predictor::evaluate_accuracy(&with_dom, &page, &traces);
        acc_without += pes::predictor::evaluate_accuracy(&without_dom, &page, &traces);
        n += 1.0;
    }
    assert!(acc_with / n + 1e-9 >= acc_without / n);
}
